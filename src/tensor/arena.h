#ifndef CDCL_TENSOR_ARENA_H_
#define CDCL_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace cdcl {

// ---------------------------------------------------------------------------
// Step-scoped workspace arena for tensor storage.
//
// A training (or eval) step allocates hundreds of short-lived buffers —
// activations, tape scratch, intermediate gradients — all of which die
// together when the step ends. Arena turns each of those heap round-trips
// into a bump-pointer increment: ArenaScope makes an arena the active
// allocation target for the current thread, every tensor created inside the
// scope draws its storage from it, and the scope's destructor resets the
// arena in O(#blocks). Leaves created outside a scope (parameters, datasets,
// optimizer state) stay heap-owned and are unaffected.
//
// The arena changes *where* bytes live, never *what* is computed: kernels see
// the same sizes and contents either way, so results are bitwise identical
// with the arena on or off (tests/arena_test.cc pins this across thread
// counts and GEMM kernels). CDCL_ARENA=0 / SetArenaEnabled(false) is the
// escape hatch that turns every scope into a no-op.
//
// Lifetime contract: memory handed out by Allocate() is valid until the
// owning scope ends (which Reset()s the arena). A tensor that must outlive
// the step has to be created outside the scope or copied out (ToVector,
// CopyDataFrom into a heap tensor). Under ASan builds the arena degrades to
// one heap allocation per request, freed on Reset, so a stale arena pointer
// becomes a real heap-use-after-free the sanitizer pass catches.
// ---------------------------------------------------------------------------

class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `n` floats (64-byte aligned, uninitialized). Valid until
  /// the next Reset().
  float* Allocate(int64_t n);

  /// Invalidates every outstanding allocation and recycles the capacity.
  /// If the last generation spilled over multiple blocks, they are coalesced
  /// into one so steady state is a single bump pointer.
  void Reset();

  /// Incremented by every Reset(); buffers remember the generation they were
  /// allocated under and DCHECK it on access in debug builds (the ASan
  /// per-allocation mode covers release verification).
  uint64_t generation() const { return generation_; }

  /// Peak floats handed out within a single generation (diagnostics).
  int64_t high_water_floats() const { return high_water_; }

 private:
  struct Block {
    float* data = nullptr;
    int64_t capacity = 0;  // floats
  };

  Block NewBlock(int64_t min_floats);
  void FreeBlock(Block* block);

  std::vector<Block> blocks_;
  size_t block_index_ = 0;  // block currently bumping
  int64_t used_ = 0;        // floats used in blocks_[block_index_]
  int64_t generation_total_ = 0;
  int64_t high_water_ = 0;
  uint64_t generation_ = 1;
  // ASan mode: every allocation is an individual heap block freed on Reset.
  std::vector<float*> asan_allocations_;
};

/// Whether ArenaScope should activate arenas at all. Resolution:
/// SetArenaEnabled() if called, else the CDCL_ARENA env var, else enabled.
bool ArenaEnabled();
void SetArenaEnabled(bool enabled);

namespace internal {
/// Arena new tensor storage on this thread draws from; null = heap.
Arena* ActiveArena();
}  // namespace internal

/// RAII step context: activates `arena` for the current thread on entry and,
/// if this scope did the activating, deactivates and Reset()s it on exit.
/// Null arena, ArenaEnabled()==false, or re-entering the already-active arena
/// all make the scope a no-op, so helpers can declare their own scope without
/// worrying about the caller's.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* activated_ = nullptr;  // non-null only when this scope activated it
  Arena* previous_ = nullptr;
};

namespace internal {

/// Storage for one TensorImpl data or grad payload: a flat float buffer that
/// lives either on the heap (std::vector) or inside the thread's active
/// Arena. The accessor surface mirrors what the op closures already use on
/// std::vector (data()/size()), so the tape code is storage-agnostic.
class Buffer {
 public:
  Buffer() = default;
  ~Buffer() = default;

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  // Debug builds check the owning arena's generation on every access, so a
  // buffer read after its step scope reset trips a DCHECK (release builds
  // rely on the ASan per-allocation mode instead).
  float* data() {
    CheckAlive();
    return ptr_;
  }
  const float* data() const {
    CheckAlive();
    return ptr_;
  }
  size_t size() const { return static_cast<size_t>(size_); }
  bool from_arena() const { return arena_ != nullptr; }

  /// Allocates `n` floats filled with `value`, routed to the active arena
  /// when one is set, else the heap. Replaces any previous payload.
  void assign(int64_t n, float value);

  /// Allocates `n` floats, leaving them uninitialized (callers overwrite).
  void acquire(int64_t n);

  /// Like assign, but the storage class follows `peer` instead of the active
  /// arena: an arena-backed peer gets an arena sibling (only while that same
  /// arena is still active), a heap peer gets heap. Gradients use this so a
  /// heap parameter never receives a step-scoped (dangling-next-step) grad.
  void assign_like(const Buffer& peer, int64_t n, float value);

  /// Takes ownership of a heap vector (no copy) when no arena is active;
  /// copies into the arena otherwise.
  void adopt(std::vector<float>&& values);

  void fill(float value);

 private:
  void AllocateFrom(Arena* arena, int64_t n);
  void AssignHeap(int64_t n, float value);
  /// Debug-only use-after-reset guard; compiles to nothing under NDEBUG.
  void CheckAlive() const {
    CDCL_DCHECK(arena_ == nullptr || arena_generation_ == arena_->generation());
  }

  std::vector<float> heap_;     // owner in heap mode (ptr_ aliases it)
  float* ptr_ = nullptr;
  int64_t size_ = 0;
  Arena* arena_ = nullptr;      // non-null when arena-backed
  uint64_t arena_generation_ = 0;
};

}  // namespace internal
}  // namespace cdcl

#endif  // CDCL_TENSOR_ARENA_H_
