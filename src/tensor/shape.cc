#include "tensor/shape.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace cdcl {

int64_t Shape::dim(int64_t i) const {
  if (i < 0) i += ndim();
  CDCL_CHECK_GE(i, 0);
  CDCL_CHECK_LT(i, ndim());
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

bool Shape::IsSuffixOf(const Shape& other) const {
  if (ndim() > other.ndim()) return false;
  const int64_t offset = other.ndim() - ndim();
  for (int64_t i = 0; i < ndim(); ++i) {
    if (dims_[static_cast<size_t>(i)] != other.dim(offset + i)) return false;
  }
  return true;
}

std::string Shape::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(dims_.size());
  for (int64_t d : dims_) parts.push_back(std::to_string(d));
  return "[" + JoinStrings(parts, ", ") + "]";
}

}  // namespace cdcl
