#include "tensor/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cdcl {

GradCheckResult GradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon, double tolerance) {
  GradCheckResult result;

  // Analytic pass.
  for (Tensor& t : inputs) {
    CDCL_CHECK(t.requires_grad());
    t.ZeroGrad();
  }
  Tensor loss = fn(inputs);
  CDCL_CHECK_EQ(loss.NumElements(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& t : inputs) {
    analytic.push_back(t.GradTensor().ToVector());
  }

  // Numeric pass (central differences); graph building is unnecessary.
  result.passed = true;
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    const int64_t n = t.NumElements();
    for (int64_t i = 0; i < n; ++i) {
      const float saved = t.data()[i];
      double plus = 0.0, minus = 0.0;
      {
        NoGradGuard no_grad;
        t.data()[i] = saved + static_cast<float>(epsilon);
        plus = fn(inputs).item();
        t.data()[i] = saved - static_cast<float>(epsilon);
        minus = fn(inputs).item();
        t.data()[i] = saved;
      }
      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double got = analytic[ti][static_cast<size_t>(i)];
      const double abs_err = std::abs(numeric - got);
      const double denom = std::max({std::abs(numeric), std::abs(got), 1.0});
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tolerance && abs_err > tolerance) {
        result.passed = false;
        if (result.detail.empty()) {
          result.detail = StrFormat(
              "input %zu elem %lld: analytic=%.6f numeric=%.6f", ti,
              static_cast<long long>(i), got, numeric);
        }
      }
    }
  }
  return result;
}

}  // namespace cdcl
