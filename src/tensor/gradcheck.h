#ifndef CDCL_TENSOR_GRADCHECK_H_
#define CDCL_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cdcl {

/// Result of a finite-difference gradient comparison.
struct GradCheckResult {
  bool passed = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;
};

/// Verifies analytic gradients of `fn` (a scalar-valued function of `inputs`)
/// against central finite differences. Each input must have requires_grad
/// set. Tolerance is on max(|abs err|, rel err).
GradCheckResult GradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon = 1e-3, double tolerance = 5e-2);

}  // namespace cdcl

#endif  // CDCL_TENSOR_GRADCHECK_H_
