#include "core/driver.h"

#include "baselines/cdtrans.h"
#include "baselines/rehearsal_baselines.h"
#include "baselines/static_uda.h"
#include "util/env.h"
#include "util/logging.h"

namespace cdcl {
namespace core {

std::vector<std::string> KnownMethods() {
  return {"CDCL",     "DER",  "DER++",     "HAL",       "MSL",
          "ER",       "Finetune", "CDTrans-S", "CDTrans-B", "TVT"};
}

Result<std::unique_ptr<cl::ContinualTrainer>> MakeTrainerByName(
    const std::string& name, const baselines::TrainerOptions& options) {
  using baselines::RehearsalMethod;
  if (name == "CDCL") {
    CdclOptions opt;
    opt.base = options;
    return std::unique_ptr<cl::ContinualTrainer>(MakeCdclTrainer(opt));
  }
  if (name == "DER") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeRehearsalTrainer(RehearsalMethod::kDer, options));
  }
  if (name == "DER++") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeRehearsalTrainer(RehearsalMethod::kDerPp, options));
  }
  if (name == "HAL") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeRehearsalTrainer(RehearsalMethod::kHal, options));
  }
  if (name == "MSL") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeRehearsalTrainer(RehearsalMethod::kMsl, options));
  }
  if (name == "ER") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeRehearsalTrainer(RehearsalMethod::kEr, options));
  }
  if (name == "Finetune") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeRehearsalTrainer(RehearsalMethod::kFinetune, options));
  }
  if (name == "CDTrans-S") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeCdTransTrainer(baselines::CdTransSize::kSmall, options));
  }
  if (name == "CDTrans-B") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeCdTransTrainer(baselines::CdTransSize::kBase, options));
  }
  if (name == "TVT") {
    return std::unique_ptr<cl::ContinualTrainer>(
        baselines::MakeStaticUdaTrainer(options));
  }
  return Status::NotFound("unknown method: " + name);
}

Result<cl::ContinualResult> RunMethodOnPair(
    const std::string& method, const ExperimentSpec& spec,
    const baselines::TrainerOptions& options) {
  data::TaskStreamOptions stream_opt;
  stream_opt.family = spec.family;
  stream_opt.source_domain = spec.source_domain;
  stream_opt.target_domain = spec.target_domain;
  stream_opt.num_tasks = spec.num_tasks;
  stream_opt.classes_per_task = spec.classes_per_task;
  stream_opt.train_per_class = spec.train_per_class;
  stream_opt.test_per_class = spec.test_per_class;
  stream_opt.seed = spec.seed;
  Result<data::CrossDomainTaskStream> stream =
      data::CrossDomainTaskStream::Make(stream_opt);
  if (!stream.ok()) return stream.status();

  Result<data::BenchmarkSpec> bench = data::GetBenchmark(spec.family);
  if (!bench.ok()) return bench.status();
  baselines::TrainerOptions resolved = options;
  resolved.model.image_hw = bench->image_hw;
  resolved.model.channels = bench->channels;
  resolved.seed = spec.seed;

  Result<std::unique_ptr<cl::ContinualTrainer>> trainer =
      MakeTrainerByName(method, resolved);
  if (!trainer.ok()) return trainer.status();
  return cl::RunContinualExperiment(trainer->get(), *stream);
}

void ApplyEnvOverrides(ExperimentSpec* spec,
                       baselines::TrainerOptions* options) {
  CDCL_CHECK(spec != nullptr);
  CDCL_CHECK(options != nullptr);
  spec->num_tasks = EnvInt("CDCL_TASKS", spec->num_tasks);
  spec->train_per_class = EnvInt("CDCL_TRAIN_PER_CLASS", spec->train_per_class);
  spec->test_per_class = EnvInt("CDCL_TEST_PER_CLASS", spec->test_per_class);
  options->epochs = EnvInt("CDCL_EPOCHS", options->epochs);
  options->warmup_epochs = EnvInt("CDCL_WARMUP", options->warmup_epochs);
  options->batch_size = EnvInt("CDCL_BATCH", options->batch_size);
  options->eval_batch = EnvInt("CDCL_EVAL_BATCH", options->eval_batch);
  options->memory_size = EnvInt("CDCL_MEMORY", options->memory_size);
  options->model.embed_dim = EnvInt("CDCL_EMBED_DIM", options->model.embed_dim);
  options->model.num_layers = EnvInt("CDCL_LAYERS", options->model.num_layers);
}

}  // namespace core
}  // namespace cdcl
