#include "core/bound_diagnostics.h"

#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "uda/discrepancy.h"
#include "util/logging.h"

namespace cdcl {
namespace core {
namespace {

/// Pooled features of a whole dataset through the task's self path.
Tensor EncodeAll(const models::CompactTransformer& model,
                 const data::TensorDataset& dataset, int64_t task) {
  NoGradGuard no_grad;
  const int64_t n = dataset.size();
  const int64_t d = model.feature_dim();
  Tensor features(Shape{n, d});
  constexpr int64_t kBatch = 32;
  for (int64_t start = 0; start < n; start += kBatch) {
    std::vector<int64_t> idx;
    for (int64_t i = start; i < std::min(n, start + kBatch); ++i) {
      idx.push_back(i);
    }
    data::Batch batch = dataset.MakeBatch(idx);
    Tensor z = model.EncodeSelf(batch.images, task);
    std::memcpy(features.data() + start * d, z.data(),
                static_cast<size_t>(z.NumElements()) * sizeof(float));
  }
  return features;
}

double DatasetError(const models::CompactTransformer& model,
                    const data::TensorDataset& dataset, int64_t task) {
  NoGradGuard no_grad;
  Tensor features = EncodeAll(model, dataset, task);
  Tensor logits = model.TilLogits(features, task);
  std::vector<int64_t> pred = ops::Argmax(logits);
  int64_t wrong = 0;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    wrong += pred[static_cast<size_t>(i)] != dataset.Get(i).task_label;
  }
  return dataset.size() == 0
             ? 0.0
             : static_cast<double>(wrong) / static_cast<double>(dataset.size());
}

}  // namespace

std::vector<BoundTerms> ComputeBoundDiagnostics(
    const CdclTrainer& trainer, const data::CrossDomainTaskStream& stream) {
  const models::CompactTransformer& model = trainer.model();
  std::vector<BoundTerms> terms;
  Rng rng(13);
  for (int64_t t = 0; t < stream.num_tasks(); ++t) {
    const data::CrossDomainTask& task = stream.task(t);
    BoundTerms bt;
    bt.task_id = t;
    bt.source_error = DatasetError(model, task.source_test, t);
    bt.target_error = DatasetError(model, task.target_test, t);
    Tensor fs = EncodeAll(model, task.source_test, t);
    Tensor ft = EncodeAll(model, task.target_test, t);
    bt.lambda = uda::ProxyADistance(fs, ft, &rng) / 2.0;  // normalize to [0,1]

    // KL(P_Mi || P_Ri): stored logits vs the current model on the memory's
    // own source images, restricted to the logit width at store time.
    double kl_sum = 0.0;
    int64_t kl_count = 0;
    for (const cl::MemoryRecord& rec : trainer.memory().records()) {
      if (rec.task_id != t) continue;
      NoGradGuard no_grad;
      std::vector<int64_t> dims = {1};
      for (int64_t d : rec.source_image.shape().dims()) dims.push_back(d);
      Tensor img = ops::Reshape(rec.source_image, Shape(dims));
      Tensor z = model.EncodeSelf(img, t);
      Tensor current = model.CilLogitsUpTo(z, rec.logit_tasks);
      Tensor stored = Tensor::FromVector(
          Shape{1, static_cast<int64_t>(rec.source_logits.size())},
          rec.source_logits.Decode());
      kl_sum += ops::KlDivergenceToTarget(current, stored).item();
      ++kl_count;
    }
    bt.memory_kl = kl_count == 0 ? 0.0 : kl_sum / static_cast<double>(kl_count);
    terms.push_back(bt);
  }
  return terms;
}

BoundSummary SummarizeBound(const std::vector<BoundTerms>& terms) {
  BoundSummary s;
  for (const BoundTerms& t : terms) {
    s.bound_rhs += t.source_error + t.lambda + t.memory_kl;
    s.observed_error += t.target_error;
  }
  if (!terms.empty()) {
    s.observed_error /= static_cast<double>(terms.size());
  }
  return s;
}

}  // namespace core
}  // namespace cdcl
