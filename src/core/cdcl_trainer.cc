#include "core/cdcl_trainer.h"

#include "nn/losses.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/pipeline.h"

namespace cdcl {
namespace core {
namespace {

baselines::TrainerOptions ResolveOptions(const CdclOptions& options) {
  baselines::TrainerOptions o = options.base;
  if (options.simple_attention) {
    // Standard attention: one shared key set, no per-task growth.
    o.model.per_task_keys = false;
  }
  return o;
}

}  // namespace

CdclTrainer::CdclTrainer(const CdclOptions& options)
    : TrainerBase("CDCL", ResolveOptions(options)), cdcl_options_(options) {}

Tensor CdclTrainer::WarmupLoss(const data::Batch& batch, int64_t task_id) {
  Tensor z = model_->EncodeSelf(batch.images, task_id);
  Tensor loss = Tensor::Scalar(0.0f);
  if (cdcl_options_.use_cil_loss) {
    loss = ops::Add(loss,
                    ops::CrossEntropy(model_->CilLogits(z), batch.labels));
  }
  if (cdcl_options_.use_til_loss) {
    loss = ops::Add(loss, ops::CrossEntropy(model_->TilLogits(z, task_id),
                                            batch.task_labels));
  }
  if (!cdcl_options_.use_cil_loss && !cdcl_options_.use_til_loss) {
    // Degenerate ablation (both heads off): keep the source CE so training
    // is still defined.
    loss = ops::Add(loss, ops::CrossEntropy(model_->TilLogits(z, task_id),
                                            batch.task_labels));
  }
  return loss;
}

bool CdclTrainer::SampleRehearsal(ReplayBatch* rb, int64_t* past_task) {
  if (memory_.empty()) return false;
  std::vector<int64_t> stored = memory_.StoredTaskIds();
  const int64_t past =
      stored[static_cast<size_t>(rng_.NextBelow(stored.size()))];
  if (!SampleReplayFromTask(past, options_.replay_batch, rb)) return false;
  *past_task = past;
  return true;
}

Tensor CdclTrainer::RehearsalLossOn(const ReplayBatch& rb, int64_t past,
                                    int64_t current_task) {
  // Replay runs through the *current* task keys: the CIL protocol evaluates
  // every sample with the latest K_T/b_T (Fig. 1), so rehearsal must keep
  // old classes recognizable under the newest encoding - the "inter-task
  // outputs" of footnote 3.
  Tensor loss = Tensor::Scalar(0.0f);
  if (cdcl_options_.simple_attention) {
    // No cross stream: self-encode both domains, skip L_R^D.
    Tensor zs = model_->EncodeSelf(rb.source_images, current_task);
    Tensor zt = model_->EncodeSelf(rb.target_images, current_task);
    Tensor cil_s = model_->CilLogits(zs);
    Tensor cil_t = model_->CilLogits(zt);
    loss = ops::Add(loss, ops::CrossEntropy(cil_s, rb.labels));
    loss = ops::Add(loss, ops::CrossEntropy(cil_t, rb.labels));
    const int64_t logit_tasks = rb.records[0]->logit_tasks;
    Tensor stored_s(Shape{static_cast<int64_t>(rb.records.size()),
                          static_cast<int64_t>(rb.records[0]->source_logits.size())});
    Tensor stored_t(stored_s.shape());
    for (size_t i = 0; i < rb.records.size(); ++i) {
      for (int64_t j = 0; j < stored_s.dim(1); ++j) {
        stored_s.at(static_cast<int64_t>(i), j) =
            rb.records[i]->source_logits[static_cast<size_t>(j)];
        stored_t.at(static_cast<int64_t>(i), j) =
            rb.records[i]->target_logits[static_cast<size_t>(j)];
      }
    }
    loss = ops::Add(
        loss, nn::LogitReplayLoss(model_->CilLogitsUpTo(zs, logit_tasks),
                                  model_->CilLogitsUpTo(zt, logit_tasks),
                                  stored_s, stored_t));
    return loss;
  }

  auto enc =
      model_->EncodeCross(rb.source_images, rb.target_images, current_task);
  Tensor cil_s = model_->CilLogits(enc.z_source);
  Tensor cil_t = model_->CilLogits(enc.z_target);
  Tensor cil_m = model_->CilLogits(enc.z_mixed);

  // L_R^ST (eq. 20): CE of the stored source label against both replayed
  // domain outputs (the product inside the log splits into two CE terms).
  loss = ops::Add(loss, ops::CrossEntropy(cil_s, rb.labels));
  loss = ops::Add(loss, ops::CrossEntropy(cil_t, rb.labels));

  // L_R^D (eq. 21): mixing consistency on the replayed pair.
  loss = ops::Add(loss, nn::MixingLoss(cil_m, cil_t));

  // L_R^Z (eq. 22): logit replay against the stored source/target logits.
  const int64_t logit_tasks = rb.records[0]->logit_tasks;
  const int64_t width = static_cast<int64_t>(rb.records[0]->source_logits.size());
  Tensor stored_s(Shape{static_cast<int64_t>(rb.records.size()), width});
  Tensor stored_t(stored_s.shape());
  for (size_t i = 0; i < rb.records.size(); ++i) {
    CDCL_CHECK_EQ(static_cast<int64_t>(rb.records[i]->source_logits.size()),
                  width);
    for (int64_t j = 0; j < width; ++j) {
      stored_s.at(static_cast<int64_t>(i), j) =
          rb.records[i]->source_logits[static_cast<size_t>(j)];
      stored_t.at(static_cast<int64_t>(i), j) =
          rb.records[i]->target_logits[static_cast<size_t>(j)];
    }
  }
  loss = ops::Add(
      loss, nn::LogitReplayLoss(model_->CilLogitsUpTo(enc.z_source, logit_tasks),
                                model_->CilLogitsUpTo(enc.z_target, logit_tasks),
                                stored_s, stored_t));

  // Intra-task replay: the TIL protocol re-encodes old tasks through their
  // own frozen K_i/b_i, so shared-parameter drift (tokenizer, Q/V, MLP) can
  // still break old heads. A CE pass through the record's own keys and head
  // anchors that path.
  Tensor zs_old = model_->EncodeSelf(rb.source_images, past);
  Tensor zt_old = model_->EncodeSelf(rb.target_images, past);
  loss = ops::Add(loss, ops::CrossEntropy(model_->TilLogits(zs_old, past),
                                          rb.task_labels));
  loss = ops::Add(loss, ops::CrossEntropy(model_->TilLogits(zt_old, past),
                                          rb.task_labels));
  return loss;
}

void CdclTrainer::RunSourceOnlyEpoch(const data::CrossDomainTask& task,
                                     int64_t task_id, bool with_rehearsal,
                                     int64_t* step) {
  data::DataLoader loader(&task.source_train, options_.batch_size, &rng_);
  const bool rehearse =
      with_rehearsal && cdcl_options_.use_rehearsal && task_id > 0;
  // Double-buffered prepare: batch k+1 (loader advance + rehearsal draws —
  // every RNG consumer of this loop) gathers on the pipeline thread while
  // batch k runs its forward/backward/optimizer step. The prepares run in
  // submission order and the compute stage draws nothing, so the RNG
  // sequence is byte-for-byte the synchronous loop's.
  struct StepData {
    data::Batch batch;
    bool has_batch = false;
    ReplayBatch replay;
    int64_t replay_task = -1;
    bool has_replay = false;
  };
  StepData slots[2];
  auto prepare = [&](StepData* s) {
    s->has_batch = loader.Next(&s->batch);
    s->has_replay = false;
    if (s->has_batch && rehearse) {
      s->has_replay = SampleRehearsal(&s->replay, &s->replay_task);
    }
  };
  StepPipeline pipe;
  int cur = 0;
  pipe.Submit([&prepare, &slots] { prepare(&slots[0]); });
  for (;;) {
    pipe.Await();
    StepData& s = slots[cur];
    if (!s.has_batch) break;
    pipe.Submit([&prepare, &slots, next = 1 - cur] { prepare(&slots[next]); });
    cur = 1 - cur;
    ArenaScope step_arena(&arena_);
    Tensor loss = WarmupLoss(s.batch, task_id);
    if (s.has_replay) {
      loss = ops::Add(loss, RehearsalLossOn(s.replay, s.replay_task, task_id));
    }
    loss_trace_.push_back(loss.item());
    loss.Backward();
    OptimizerStep((*step)++);
  }
}

Status CdclTrainer::ObserveTask(const data::CrossDomainTask& task) {
  const int64_t num_classes = static_cast<int64_t>(task.classes.size());
  const int64_t steps_per_epoch = std::max<int64_t>(
      (task.source_train.size() + options_.batch_size - 1) / options_.batch_size,
      1);
  StartTask(num_classes, steps_per_epoch);  // Algorithm 1 line 4 (new K_i, b_i)
  const int64_t current = tasks_seen_ - 1;
  const int64_t global_offset = task.classes[0];

  data::Batch source_all = FullBatch(task.source_train);
  data::Batch target_all = FullBatch(task.target_train);

  model_->SetTraining(true);
  int64_t step = 0;
  AlignmentPlan plan;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const bool warm = epoch < options_.warmup_epochs;
    if (warm) {
      // Algorithm 1 lines 7-9: source-only warm-up (with rehearsal from the
      // second task on).
      RunSourceOnlyEpoch(task, current, /*with_rehearsal=*/true, &step);
      continue;
    }

    // Algorithm 1 lines 11-12: rebuild centroids, pseudo-labels and the pair
    // set P every epoch.
    plan = BuildAlignment(task, current, cdcl_options_.pseudo_refine_iters);
    {
      int64_t hits = 0;
      for (size_t i = 0; i < plan.pseudo_labels.size(); ++i) {
        hits += plan.pseudo_labels[i] ==
                task.target_train.Get(static_cast<int64_t>(i)).task_label;
      }
      last_pseudo_label_accuracy_ =
          plan.pseudo_labels.empty()
              ? 0.0
              : static_cast<double>(hits) /
                    static_cast<double>(plan.pseudo_labels.size());
      last_pair_count_ = static_cast<int64_t>(plan.pairs.size());
    }
    if (plan.pairs.empty()) {
      // Alignment failed this epoch (all pseudo-labels unsupported); fall
      // back to source-only training rather than skipping the epoch.
      RunSourceOnlyEpoch(task, current, /*with_rehearsal=*/false, &step);
      continue;
    }

    rng_.Shuffle(&plan.pairs);
    // Full-coverage source batches run alongside the pair batches: the
    // filtered pair set only covers part of the source data, and eqs. 9/12
    // keep L_S on *all* labeled data throughout training.
    data::DataLoader source_loader(&task.source_train, options_.batch_size,
                                   &rng_);
    const bool rehearse = cdcl_options_.use_rehearsal && current > 0;
    const size_t batch_size = static_cast<size_t>(options_.batch_size);
    // Double-buffered prepare: the gathers and every RNG draw of a step
    // (source-loader advance incl. its reshuffle-on-exhaustion, rehearsal
    // task pick + replay sample) run on the pipeline thread while the
    // previous step computes. Prepares execute in submission order and the
    // compute stage draws nothing, so the RNG sequence — and therefore the
    // loss/param trajectory — is bitwise the synchronous loop's.
    struct PairStep {
      std::vector<int64_t> task_labels, labels;
      Tensor xs, xt;
      data::Batch source_batch;
      ReplayBatch replay;
      int64_t replay_task = -1;
      bool has_replay = false;
    };
    PairStep slots[2];
    auto prepare = [&](PairStep* s, size_t start) {
      const size_t end = std::min(plan.pairs.size(), start + batch_size);
      std::vector<int64_t> si, ti;
      s->task_labels.clear();
      s->labels.clear();
      for (size_t i = start; i < end; ++i) {
        si.push_back(plan.pairs[i].first);
        ti.push_back(plan.pairs[i].second);
        const int64_t tl =
            source_all.task_labels[static_cast<size_t>(plan.pairs[i].first)];
        s->task_labels.push_back(tl);
        s->labels.push_back(tl + global_offset);
      }
      s->xs = ops::IndexRows(source_all.images, si);
      s->xt = ops::IndexRows(target_all.images, ti);
      if (!source_loader.Next(&s->source_batch)) {
        source_loader.Reset();
        source_loader.Next(&s->source_batch);
      }
      s->has_replay =
          rehearse ? SampleRehearsal(&s->replay, &s->replay_task) : false;
    };
    StepPipeline pipe;
    int cur = 0;
    pipe.Submit([&prepare, &slots] { prepare(&slots[0], 0); });
    for (size_t start = 0; start < plan.pairs.size(); start += batch_size) {
      pipe.Await();
      PairStep& s = slots[cur];
      const size_t next_start = start + batch_size;
      if (next_start < plan.pairs.size()) {
        pipe.Submit([&prepare, &slots, next = 1 - cur, next_start] {
          prepare(&slots[next], next_start);
        });
      }
      cur = 1 - cur;
      // One arena-scoped training step: every tensor from here to the
      // optimizer update (the cross-encoding, losses, tape scratch) is a
      // bump allocation released at the scope reset. The prepared gathers
      // stay heap-owned by the slot — arena-invisible by contract.
      ArenaScope step_arena(&arena_);
      Tensor loss = Tensor::Scalar(0.0f);
      if (cdcl_options_.simple_attention) {
        // Ablation: plain self-attention on each stream, no mixing terms.
        Tensor zs = model_->EncodeSelf(s.xs, current);
        Tensor zt = model_->EncodeSelf(s.xt, current);
        if (cdcl_options_.use_cil_loss) {
          loss = ops::Add(loss,
                          ops::CrossEntropy(model_->CilLogits(zs), s.labels));
          loss = ops::Add(loss,
                          ops::CrossEntropy(model_->CilLogits(zt), s.labels));
        }
        if (cdcl_options_.use_til_loss) {
          loss = ops::Add(loss, ops::CrossEntropy(model_->TilLogits(zs, current),
                                                  s.task_labels));
          loss = ops::Add(loss, ops::CrossEntropy(model_->TilLogits(zt, current),
                                                  s.task_labels));
        }
      } else {
        auto enc = model_->EncodeCross(s.xs, s.xt, current);
        if (cdcl_options_.use_cil_loss) {
          // L_CIL = L^CIL_S + L^CIL_T + L^CIL_D (eqs. 9-11, 15).
          Tensor cil_s = model_->CilLogits(enc.z_source);
          Tensor cil_t = model_->CilLogits(enc.z_target);
          Tensor cil_m = model_->CilLogits(enc.z_mixed);
          loss = ops::Add(loss, ops::CrossEntropy(cil_s, s.labels));
          loss = ops::Add(loss, ops::CrossEntropy(cil_t, s.labels));
          loss = ops::Add(loss, nn::MixingLoss(cil_m, cil_t));
        }
        if (cdcl_options_.use_til_loss) {
          // L_TIL = L^TIL_S + L^TIL_T + L^TIL_D (eqs. 12-14, 16).
          Tensor til_s = model_->TilLogits(enc.z_source, current);
          Tensor til_t = model_->TilLogits(enc.z_target, current);
          Tensor til_m = model_->TilLogits(enc.z_mixed, current);
          loss = ops::Add(loss, ops::CrossEntropy(til_s, s.task_labels));
          loss = ops::Add(loss, ops::CrossEntropy(til_t, s.task_labels));
          loss = ops::Add(loss, nn::MixingLoss(til_m, til_t));
        }
      }
      loss = ops::Add(loss, WarmupLoss(s.source_batch, current));
      // Algorithm 1 lines 15-16: rehearsal from the second task on.
      if (s.has_replay) {
        loss = ops::Add(loss, RehearsalLossOn(s.replay, s.replay_task, current));
      }
      loss_trace_.push_back(loss.item());
      loss.Backward();
      OptimizerStep(step++);
    }
  }

  // Algorithm 1 line 19: store the highest-confidence records.
  if (cdcl_options_.use_rehearsal) {
    if (plan.pairs.empty()) {
      plan = BuildAlignment(task, current, cdcl_options_.pseudo_refine_iters);
    }
    StoreTaskMemory(task, current, plan);
  }
  return Status::Ok();
}

void CdclTrainer::StoreTaskMemory(const data::CrossDomainTask& task,
                                  int64_t task_id, const AlignmentPlan& plan) {
  NoGradGuard no_grad;
  // Snapshot tensors are step-scoped; the records keep only plain vectors
  // plus handles to the (heap, dataset-owned) images.
  ArenaScope step_arena(&arena_);
  model_->SetTraining(false);
  // Records are the aligned pairs; when alignment is empty fall back to
  // index-aligned source/target samples so the memory never starves.
  std::vector<std::pair<int64_t, int64_t>> pairs = plan.pairs;
  if (pairs.empty()) {
    const int64_t n =
        std::min(task.source_train.size(), task.target_train.size());
    for (int64_t i = 0; i < n; ++i) pairs.emplace_back(i, i);
  }
  std::vector<int64_t> si, ti;
  for (const auto& [s, t] : pairs) {
    si.push_back(s);
    ti.push_back(t);
  }
  data::Batch source_all = FullBatch(task.source_train);
  data::Batch target_all = FullBatch(task.target_train);
  Tensor xs = ops::IndexRows(source_all.images, si);
  Tensor xt = ops::IndexRows(target_all.images, ti);
  // Memory snapshots are inference: take the fused batched path.
  Tensor zs = model_->EncodeSelfBatched(xs, task_id);
  Tensor zt = model_->EncodeSelfBatched(xt, task_id);
  Tensor til_probs_s = ops::Softmax(model_->TilLogits(zs, task_id));
  Tensor til_probs_t = ops::Softmax(model_->TilLogits(zt, task_id));
  Tensor cil_s = model_->CilLogits(zs);
  Tensor cil_t = model_->CilLogits(zt);
  std::vector<float> conf_s = ops::RowMax(til_probs_s);
  std::vector<float> conf_t = ops::RowMax(til_probs_t);
  const int64_t width = cil_s.dim(1);
  const int64_t d = model_->feature_dim();

  std::vector<cl::MemoryRecord> candidates;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const data::Example& src = task.source_train.Get(pairs[i].first);
    const data::Example& tgt = task.target_train.Get(pairs[i].second);
    cl::MemoryRecord rec;
    rec.source_image = src.image;
    rec.target_image = tgt.image;
    rec.label = src.label;
    rec.task_label = src.task_label;
    // max(y^TIL_S) v max(y^TIL_T) - the paper's confidence criterion.
    rec.confidence = std::max(conf_s[i], conf_t[i]);
    rec.logit_tasks = tasks_seen_;
    const int64_t row = static_cast<int64_t>(i);
    std::vector<float> logits_s(static_cast<size_t>(width));
    std::vector<float> logits_t(static_cast<size_t>(width));
    std::vector<float> feat(static_cast<size_t>(d));
    for (int64_t j = 0; j < width; ++j) {
      logits_s[static_cast<size_t>(j)] = cil_s.at(row, j);
      logits_t[static_cast<size_t>(j)] = cil_t.at(row, j);
    }
    for (int64_t j = 0; j < d; ++j) {
      feat[static_cast<size_t>(j)] = zs.at(row, j);
    }
    // Encoded under the active precision mode — fp32 stores raw floats.
    rec.source_logits = cl::CompactFloats::Encode(logits_s);
    rec.target_logits = cl::CompactFloats::Encode(logits_t);
    rec.feature = cl::CompactFloats::Encode(feat);
    candidates.push_back(std::move(rec));
  }
  memory_.AddTask(task_id, std::move(candidates), &rng_);
  model_->SetTraining(true);
}

void CdclTrainer::ExportExtraState(ByteWriter* writer) const {
  writer->PutF64(last_pseudo_label_accuracy_);
  writer->PutI64(last_pair_count_);
  writer->PutFloats(loss_trace_);
}

bool CdclTrainer::ImportExtraState(ByteReader* reader) {
  return reader->GetF64(&last_pseudo_label_accuracy_) &&
         reader->GetI64(&last_pair_count_) && reader->GetFloats(&loss_trace_);
}

std::unique_ptr<CdclTrainer> MakeCdclTrainer(const CdclOptions& options) {
  return std::make_unique<CdclTrainer>(options);
}

}  // namespace core
}  // namespace cdcl
