#ifndef CDCL_CORE_DRIVER_H_
#define CDCL_CORE_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/trainer_base.h"
#include "cl/experiment.h"
#include "core/cdcl_trainer.h"
#include "data/task_stream.h"

namespace cdcl {
namespace core {

/// One source->target continual experiment configuration.
struct ExperimentSpec {
  std::string family;
  std::string source_domain;
  std::string target_domain;
  int64_t num_tasks = 5;
  int64_t classes_per_task = 2;
  int64_t train_per_class = 20;
  int64_t test_per_class = 10;
  uint64_t seed = 0;
};

/// Method registry shared by benches and examples. Known names:
/// "CDCL", "DER", "DER++", "HAL", "MSL", "ER", "Finetune",
/// "CDTrans-S", "CDTrans-B", "TVT". NotFound otherwise.
Result<std::unique_ptr<cl::ContinualTrainer>> MakeTrainerByName(
    const std::string& name, const baselines::TrainerOptions& options);

std::vector<std::string> KnownMethods();

/// Builds the stream for `spec` and runs one continual experiment.
Result<cl::ContinualResult> RunMethodOnPair(
    const std::string& method, const ExperimentSpec& spec,
    const baselines::TrainerOptions& options);

/// Reads the common CDCL_* environment knobs on top of the given defaults
/// (CDCL_EPOCHS, CDCL_WARMUP, CDCL_BATCH, CDCL_MEMORY, CDCL_TRAIN_PER_CLASS,
/// CDCL_TEST_PER_CLASS, CDCL_TASKS, CDCL_EMBED_DIM, CDCL_LAYERS).
void ApplyEnvOverrides(ExperimentSpec* spec, baselines::TrainerOptions* options);

}  // namespace core
}  // namespace cdcl

#endif  // CDCL_CORE_DRIVER_H_
