#ifndef CDCL_CORE_CDCL_TRAINER_H_
#define CDCL_CORE_CDCL_TRAINER_H_

#include <memory>
#include <vector>

#include "baselines/trainer_base.h"

namespace cdcl {
namespace core {

/// Configuration of the CDCL algorithm on top of the shared TrainerOptions.
/// The boolean toggles correspond to Table IV's ablation rows.
struct CdclOptions {
  baselines::TrainerOptions base;

  bool use_cil_loss = true;   // L_CIL (eq. 15); off = ablation row A
  bool use_til_loss = true;   // L_TIL (eq. 16); off = ablation row B
  bool use_rehearsal = true;  // L_R (eq. 23);  off = ablation row C
  /// "Simple attention" ablation: shared keys, no cross-attention stream and
  /// therefore no mixing terms - the standard-attention row of Table IV.
  bool simple_attention = false;
  /// k-means refinement rounds for the center-aware pseudo-labels.
  int pseudo_refine_iters = 1;
};

/// The paper's method (Algorithm 1): per task, a source-only warm-up, then
/// epochs of paired cross-attention training with center-aware pseudo-labeled
/// pairs (eqs. 9-19), plus rehearsal of stored (x_S, x_T, y_S, logits) tuples
/// with L_R^ST + L_R^D + L_R^Z (eqs. 20-23) from the second task on.
class CdclTrainer : public baselines::TrainerBase {
 public:
  explicit CdclTrainer(const CdclOptions& options);

  Status ObserveTask(const data::CrossDomainTask& task) override;

  const CdclOptions& cdcl_options() const { return cdcl_options_; }

  /// Fraction of target samples whose pseudo-label matched their (hidden)
  /// true label in the last alignment round; diagnostic only.
  double last_pseudo_label_accuracy() const {
    return last_pseudo_label_accuracy_;
  }
  /// Pair-set size of the last alignment round.
  int64_t last_pair_count() const { return last_pair_count_; }

  /// Per-step training losses in observation order, across every epoch and
  /// task this trainer has seen. Diagnostic: tests/arena_test.cc pins this
  /// trajectory bitwise across CDCL_ARENA / CDCL_FUSED_TRAIN settings and
  /// thread counts.
  const std::vector<float>& loss_trace() const { return loss_trace_; }

  /// Checkpoint extra section: loss trace + alignment diagnostics, so a
  /// restored run's trace matches the uninterrupted run's bitwise.
  void ExportExtraState(ByteWriter* writer) const override;
  bool ImportExtraState(ByteReader* reader) override;

 private:
  /// Source-only warm-up objective: L^CIL_S + L^TIL_S (Algorithm 1 lines 8-9).
  Tensor WarmupLoss(const data::Batch& batch, int64_t task_id);
  /// Prepare half of the rehearsal loss: draws the past-task pick and the
  /// replay sample from rng_ (the only RNG the rehearsal path consumes).
  /// Returns false — drawing exactly what the synchronous path drew — when
  /// the memory is empty or the picked task has no records. Runs on the
  /// pipeline thread under CDCL_ASYNC_PIPELINE.
  bool SampleRehearsal(ReplayBatch* rb, int64_t* past_task);
  /// Compute half: rehearsal loss (eqs. 20-23) on a pre-sampled batch.
  /// Touches no RNG, so it can overlap the next step's SampleRehearsal.
  Tensor RehearsalLossOn(const ReplayBatch& rb, int64_t past_task,
                         int64_t current_task);
  /// One source-only epoch (shared by the warm-up phase, which adds
  /// rehearsal from the second task on, and the empty-pair-set fallback,
  /// which does not): full pass of source batches, each an arena-scoped
  /// step of WarmupLoss -> Backward -> OptimizerStep.
  void RunSourceOnlyEpoch(const data::CrossDomainTask& task, int64_t task_id,
                          bool with_rehearsal, int64_t* step);
  void StoreTaskMemory(const data::CrossDomainTask& task, int64_t task_id,
                       const AlignmentPlan& plan);

  CdclOptions cdcl_options_;
  double last_pseudo_label_accuracy_ = 0.0;
  int64_t last_pair_count_ = 0;
  std::vector<float> loss_trace_;
};

std::unique_ptr<CdclTrainer> MakeCdclTrainer(const CdclOptions& options);

}  // namespace core
}  // namespace cdcl

#endif  // CDCL_CORE_CDCL_TRAINER_H_
