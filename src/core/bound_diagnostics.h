#ifndef CDCL_CORE_BOUND_DIAGNOSTICS_H_
#define CDCL_CORE_BOUND_DIAGNOSTICS_H_

#include <vector>

#include "core/cdcl_trainer.h"
#include "data/task_stream.h"

namespace cdcl {
namespace core {

/// Measurable terms of Theorem 3's target-error bound
///   eps_T <= sum_i (eps_Si + lambda_i) + sum_i KL(P_Mi || P_Ri) + C*
/// evaluated on a trained CdclTrainer. All quantities are empirical:
///   source_error   eps_Si on the source test split (TIL protocol)
///   lambda         proxy A-distance between source/target pooled features
///   memory_kl      mean KL between stored CIL logits and the current model's
///                  logits on the same memory samples (the P_Mi vs P_Ri term)
///   target_error   the observed eps_Ti the bound is bounding
struct BoundTerms {
  int64_t task_id = 0;
  double source_error = 0.0;
  double lambda = 0.0;
  double memory_kl = 0.0;
  double target_error = 0.0;
};

/// Computes per-task bound terms after the trainer has seen the full stream.
std::vector<BoundTerms> ComputeBoundDiagnostics(
    const CdclTrainer& trainer, const data::CrossDomainTaskStream& stream);

/// The aggregated right-hand side of eq. 28 (without the incomputable C*)
/// and the observed total target error, for a quick "bound holds" check.
struct BoundSummary {
  double bound_rhs = 0.0;      // sum(eps_Si + lambda_i) + sum KL
  double observed_error = 0.0; // mean target error over tasks
};
BoundSummary SummarizeBound(const std::vector<BoundTerms>& terms);

}  // namespace core
}  // namespace cdcl

#endif  // CDCL_CORE_BOUND_DIAGNOSTICS_H_
