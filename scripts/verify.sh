#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, Debug and Release, with
# -Wall -Wextra (always on via CMakeLists). Usage: scripts/verify.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-verify-${config,,}"
  echo "== ${config}: configure =="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
  echo "== ${config}: build =="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ${config}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
done

echo "verify: OK (Debug + Release)"
