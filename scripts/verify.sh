#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, Debug and Release, with
# -Wall -Wextra (always on via CMakeLists), plus an ASan/UBSan pass over the
# kernel + fused-eval + arena suites (packing buffers, per-thread grad
# scratch, per-sample score scratch, and step-arena lifetimes are where
# bugs hide — under ASan the arena allocates per-request so a tensor
# escaping its step scope is a real heap-use-after-free) and the
# ctest-labeled `concurrency` suites (serving, scheduler torture, step
# pipeline), a TSan pass over the lock-free concurrency suites
# (quantized-cache publish, micro-batcher, serve-while-train snapshot
# hand-off, scheduler epoch protocol, pipeline handoff) with the soak
# volumes bumped, the crash-safety fault matrix (checkpoint commit-protocol
# crashes, corruption fallback, trainer-death degradation) under ASan and
# TSan plus a restore-determinism rerun in the alternate execution modes,
# an examples build check, and a docs knob-consistency grep
# (README.md must not document env knobs that no longer exist in the
# source). Usage: scripts/verify.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-verify-${config,,}"
  echo "== ${config}: configure =="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
  echo "== ${config}: build =="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ${config}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
done

echo "== examples: built under the default targets =="
for example in examples/*.cc; do
  bin="build-verify-release/$(basename "${example}" .cc)"
  if [[ ! -x "${bin}" ]]; then
    echo "verify: FAIL — example binary ${bin} was not built" >&2
    exit 1
  fi
done

echo "== ASan/UBSan: kernel + batched-eval + arena + vec-math + quant suites =="
asan_dir="build-verify-asan"
cmake -B "${asan_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DCDCL_SANITIZE=ON \
  -DCDCL_BUILD_BENCH=OFF -DCDCL_BUILD_EXAMPLES=OFF
cmake --build "${asan_dir}" -j "${JOBS}" \
  --target kernels_test gemm_packed_test batched_eval_test arena_test \
  vec_math_test gemm_quant_test quant_eval_test serve_test \
  continual_serve_test degrade_test scheduler_test pipeline_test ckpt_test
ctest --test-dir "${asan_dir}" --output-on-failure -j "${JOBS}" \
  -R '^(kernels_test|gemm_packed_test|batched_eval_test|arena_test|vec_math_test|gemm_quant_test|quant_eval_test)$'

echo "== ASan/UBSan: checkpoint crash-safety fault matrix =="
# The full deterministic fault matrix — injected crashes at every syscall of
# the commit protocol, short writes, ENOSPC/EIO, on-disk corruption — runs
# under ASan so the no-cleanup crash unwinds (deliberately abandoned temp
# files, partial state) cannot hide leaks or lifetime bugs.
ctest --test-dir "${asan_dir}" --output-on-failure -j "${JOBS}" \
  -R '^ckpt_test$'

echo "== ASan/UBSan: concurrency label (serve + serve-while-train + degradation + scheduler + pipeline) =="
ctest --test-dir "${asan_dir}" --output-on-failure -j "${JOBS}" -L concurrency

echo "== sync pipeline mode: arena suite with CDCL_ASYNC_PIPELINE=0 =="
# The async step pipeline must be bitwise inert: with it disabled the
# trainer reverts to the pre-pipeline execution order, and the arena
# trajectory suite (the strictest end-to-end bitwise gate) must stay green.
CDCL_ASYNC_PIPELINE=0 ctest --test-dir "${asan_dir}" --output-on-failure \
  -j "${JOBS}" -R '^arena_test$'

echo "== legacy numerics mode: arena suite with CDCL_VEC_MATH=0 =="
# The vectorized transcendental tier is a numerics mode; the libm mode must
# stay a first-class citizen (bitwise trajectories, fused-vs-op equality,
# arena lifetimes) or the CDCL_VEC_MATH=0 escape hatch rots.
CDCL_VEC_MATH=0 ctest --test-dir "${asan_dir}" --output-on-failure \
  -j "${JOBS}" -R '^arena_test$'

echo "== reduced precision mode: batched-eval coherence with CDCL_GEMM_PRECISION=bf16 =="
# Within a quantized mode the op-by-op eval forward and the fused batched
# forward consume the same QuantizedBlock, so the whole bitwise coherence
# suite must stay green — otherwise the two eval paths have drifted apart.
CDCL_GEMM_PRECISION=bf16 ctest --test-dir "${asan_dir}" --output-on-failure \
  -j "${JOBS}" -R '^batched_eval_test$'

echo "== TSan: quantized-cache + micro-batcher + serve-while-train suites =="
# The lock-free serving pieces — the QuantizedBlock cache's atomic
# shared_ptr publish, the micro-batcher's queue/deadline handoff, and the
# continual server's snapshot publish racing live micro-batches — are
# exactly the code ASan cannot vet. Skipped (with a note) only when the
# toolchain cannot link ThreadSanitizer.
tsan_probe="$(mktemp -d)"
trap 'rm -rf "${tsan_probe}"' EXIT
echo 'int main(){return 0;}' > "${tsan_probe}/probe.cc"
if c++ -fsanitize=thread "${tsan_probe}/probe.cc" -o "${tsan_probe}/probe" \
    2>/dev/null && "${tsan_probe}/probe"; then
  tsan_dir="build-verify-tsan"
  cmake -B "${tsan_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DCDCL_TSAN=ON \
    -DCDCL_BUILD_BENCH=OFF -DCDCL_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${JOBS}" \
    --target quant_eval_test serve_test continual_serve_test \
    degrade_test scheduler_test pipeline_test
  "${tsan_dir}/quant_eval_test" \
    --gtest_filter='QuantizedCacheConcurrencyTest.*'
  # The persistent-scheduler epoch protocol and the step-pipeline handoff
  # are lock-free by design on their fast paths — TSan is the only tool
  # that can vet the publish/claim orderings under real interleavings.
  "${tsan_dir}/scheduler_test"
  "${tsan_dir}/pipeline_test" \
    --gtest_filter='StepPipelineTest.*:PipelineDeterminismTest.CdclTrajectoryBitwiseAsyncVsSync'
  CDCL_SOAK_REQS=600 "${tsan_dir}/serve_test" \
    --gtest_filter='MicroBatcherTest.*:ServeTest.Overload*:ServeTest.SlowConsumer*:ServeTest.SoakManyConnectionsPipelined'
  # The serve-while-train torture test runs in full under TSan, with the
  # pipelined-traffic floor bumped so the snapshot hand-offs happen under
  # sustained load (the continual-suite analog of the CDCL_SOAK_REQS bump).
  CDCL_SERVE_TORTURE_REQS=150 "${tsan_dir}/continual_serve_test"
  # Trainer-death-under-traffic: the training thread dies (injected) while
  # clients hammer the server — the degraded-serving hand-off (training
  # thread -> loop-thread health reporter -> wire) is exactly the kind of
  # cross-thread publish TSan exists to vet.
  "${tsan_dir}/degrade_test"
else
  echo "verify: NOTE — toolchain lacks ThreadSanitizer support, TSan pass skipped"
fi

echo "== restore determinism: kill-and-resume rerun in alternate execution modes =="
# The bitwise kill-and-resume pin already ran in Debug, Release, and ASan;
# here it reruns with the async step pipeline disabled and with the step
# arena disabled — a checkpoint written by any execution mode must resume
# bitwise-identically in that mode, or the determinism contract is a
# configuration accident.
CDCL_ASYNC_PIPELINE=0 "build-verify-release/ckpt_test" \
  --gtest_filter='CheckpointTest.KillAndResumeIsBitwiseIdenticalToUninterruptedRun'
CDCL_ARENA=0 "build-verify-release/ckpt_test" \
  --gtest_filter='CheckpointTest.KillAndResumeIsBitwiseIdenticalToUninterruptedRun'

echo "== docs: README knob consistency =="
# Every CDCL_* knob README.md documents must still be *read* somewhere — an
# Env*()/getenv() call in the source or a CMake option — so the docs cannot
# rot. Matching doc-comments is not enough: a knob whose read was deleted
# but that is still name-dropped in comments must fail here.
stale=0
for knob in $(grep -oE 'CDCL_[A-Z0-9_]+' README.md | sort -u); do
  if ! grep -rqE "(Env[A-Za-z]+|getenv)\(\"${knob}\"" src bench tests examples \
      && ! grep -qE "\b${knob}\b" CMakeLists.txt; then
    echo "verify: FAIL — README.md documents ${knob}, but nothing reads it" >&2
    stale=1
  fi
done
if [[ "${stale}" -ne 0 ]]; then
  exit 1
fi

echo "verify: OK (Debug + Release + examples + ASan/UBSan + fault matrix + legacy-numerics + TSan + restore determinism + docs knobs)"
