#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, Debug and Release, with
# -Wall -Wextra (always on via CMakeLists), plus an ASan/UBSan pass over the
# kernel suites (packing buffers and per-thread grad scratch are where
# lifetime bugs hide). Usage: scripts/verify.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-verify-${config,,}"
  echo "== ${config}: configure =="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
  echo "== ${config}: build =="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "== ${config}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
done

echo "== ASan/UBSan: kernel suites =="
asan_dir="build-verify-asan"
cmake -B "${asan_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DCDCL_SANITIZE=ON \
  -DCDCL_BUILD_BENCH=OFF -DCDCL_BUILD_EXAMPLES=OFF
cmake --build "${asan_dir}" -j "${JOBS}" \
  --target kernels_test gemm_packed_test
ctest --test-dir "${asan_dir}" --output-on-failure -j "${JOBS}" \
  -R '^(kernels_test|gemm_packed_test)$'

echo "verify: OK (Debug + Release + ASan/UBSan kernels)"
