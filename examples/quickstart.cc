// Quickstart: run CDCL on the synthetic MNIST->USPS stream (5 tasks of 2
// digit classes) and print the continual-learning accuracy matrices and the
// ACC / FGT metrics of Table I's rightmost block.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
//
// Environment knobs: CDCL_EPOCHS, CDCL_WARMUP, CDCL_TRAIN_PER_CLASS, ...
// (see core/driver.h and the knob table in the top-level README.md).
// Evaluation rides the fused batched inference path; CDCL_EVAL_BATCH widens
// its GEMMs and CDCL_FUSED_EVAL=0 falls back to the op-by-op forward.

#include <cstdio>

#include "cl/experiment.h"
#include "core/cdcl_trainer.h"
#include "core/driver.h"
#include "util/stopwatch.h"

int main() {
  using namespace cdcl;  // NOLINT: example brevity

  // 1. Describe the cross-domain continual stream.
  core::ExperimentSpec spec;
  spec.family = "digits";
  spec.source_domain = "MN";
  spec.target_domain = "US";
  spec.num_tasks = 5;
  spec.classes_per_task = 2;
  spec.train_per_class = 24;
  spec.test_per_class = 12;
  spec.seed = 1;

  // 2. Configure the trainer (paper Algorithm 1).
  baselines::TrainerOptions options;
  options.model.channels = 1;  // digits are grayscale
  options.model.embed_dim = 24;
  options.model.num_layers = 2;
  options.epochs = 16;
  options.warmup_epochs = 5;
  options.memory_size = 100;
  core::ApplyEnvOverrides(&spec, &options);

  std::printf("CDCL quickstart: %s %s->%s, %lld tasks x %lld classes\n",
              spec.family.c_str(), spec.source_domain.c_str(),
              spec.target_domain.c_str(),
              static_cast<long long>(spec.num_tasks),
              static_cast<long long>(spec.classes_per_task));

  Stopwatch timer;
  Result<cl::ContinualResult> result =
      core::RunMethodOnPair("CDCL", spec, options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Report the R matrices (rows: after task i; columns: eval task j) and
  // the paper's two metrics.
  std::printf("\nTIL accuracy matrix (%%):\n%s",
              result->til.ToString().c_str());
  std::printf("\nCIL accuracy matrix (%%):\n%s",
              result->cil.ToString().c_str());
  std::printf("\nTIL: ACC=%.2f%%  FGT=%.2f%%\n", 100.0 * result->til_acc(),
              100.0 * result->til_fgt());
  std::printf("CIL: ACC=%.2f%%  FGT=%.2f%%\n", 100.0 * result->cil_acc(),
              100.0 * result->cil_fgt());
  std::printf("(paper, real MNIST<->USPS: TIL ACC 91.91, FGT 7.38)\n");
  std::printf("\ndone in %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
