// Office-31 walkthrough: the self-driving-car story from the paper's intro,
// scaled to the office benchmark. A model first learns labeled "Amazon"
// product images task by task, and must keep working on unlabeled "Webcam"
// photos of the same classes. We pit CDCL against a strong rehearsal
// baseline (DER++) and the static upper bound (TVT) on the same stream and
// print the resulting ACC/FGT, showing the cross-domain continual gap.
//
//   ./build/examples/office_continual

#include <cstdio>

#include "cl/experiment.h"
#include "core/driver.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cdcl;  // NOLINT: example brevity

  core::ExperimentSpec spec;
  spec.family = "office31";
  spec.source_domain = "A";
  spec.target_domain = "W";
  spec.num_tasks = 5;
  spec.classes_per_task = 6;  // the paper's 30 classes in 5 tasks
  spec.train_per_class = 8;
  spec.test_per_class = 5;
  spec.seed = 1;

  baselines::TrainerOptions options;
  options.model.channels = 3;
  options.model.embed_dim = 32;
  options.epochs = 20;
  options.warmup_epochs = 8;
  options.memory_size = 150;
  core::ApplyEnvOverrides(&spec, &options);

  std::printf("Office-31 %s->%s continual stream, %lld tasks x %lld classes\n\n",
              spec.source_domain.c_str(), spec.target_domain.c_str(),
              static_cast<long long>(spec.num_tasks),
              static_cast<long long>(spec.classes_per_task));

  TablePrinter table(
      {"Method", "TIL ACC", "TIL FGT", "CIL ACC", "CIL FGT", "seconds"});
  for (const char* method_name : {"DER++", "CDCL", "TVT"}) {
    const std::string method = method_name;
    Stopwatch timer;
    Result<cl::ContinualResult> result =
        core::RunMethodOnPair(method, spec, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({method == "CDCL" ? "CDCL (ours)" : method,
                  StrFormat("%.2f", 100.0 * result->til_acc()),
                  StrFormat("%.2f", 100.0 * result->til_fgt()),
                  StrFormat("%.2f", 100.0 * result->cil_acc()),
                  StrFormat("%.2f", 100.0 * result->cil_fgt()),
                  StrFormat("%.1f", timer.ElapsedSeconds())});
  }
  table.Print();
  std::printf(
      "\nReading: DER++ has no domain-adaptation machinery, CDCL aligns the\n"
      "unlabeled target while protecting old tasks, TVT retrains jointly on\n"
      "everything (upper bound, not a continual learner).\n");
  return 0;
}
