// Inspecting the intra-task center-aware pseudo-labeling pipeline (paper
// eqs. 17-19) in isolation: train CDCL on one VisDA-style task and report,
// epoch-like, how pseudo-label accuracy and the pair-set size evolve, plus
// the feature-space domain discrepancy before and after adaptation.
//
//   ./build/examples/pseudo_label_inspection

#include <cstdio>

#include "core/cdcl_trainer.h"
#include "data/task_stream.h"
#include "uda/discrepancy.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cdcl;  // NOLINT: example brevity

  data::TaskStreamOptions stream_opt;
  stream_opt.family = "visda";
  stream_opt.source_domain = "syn";
  stream_opt.target_domain = "real";
  stream_opt.num_tasks = 3;
  stream_opt.classes_per_task = 3;
  stream_opt.train_per_class = 16;
  stream_opt.test_per_class = 8;
  stream_opt.seed = 2;
  auto stream = data::CrossDomainTaskStream::Make(stream_opt);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }

  core::CdclOptions options;
  options.base.model.channels = 3;
  options.base.model.embed_dim = 32;
  options.base.epochs = 16;
  options.base.warmup_epochs = 6;
  options.base.memory_size = 100;
  options.base.seed = 2;
  core::CdclTrainer trainer(options);

  std::printf("Center-aware pseudo-labeling on visda syn->real\n\n");
  TablePrinter table({"task", "pseudo-label acc", "pairs kept",
                      "target TIL acc"});
  for (int64_t t = 0; t < stream->num_tasks(); ++t) {
    Status st = trainer.ObserveTask(stream->task(t));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const double til = trainer.EvaluateTil(stream->task(t).target_test, t);
    table.AddRow({StrFormat("%lld", static_cast<long long>(t)),
                  StrFormat("%.2f%%", 100.0 * trainer.last_pseudo_label_accuracy()),
                  StrFormat("%lld", static_cast<long long>(trainer.last_pair_count())),
                  StrFormat("%.2f%%", 100.0 * til)});
  }
  table.Print();

  // Feature-space discrepancy on the last task: the alignment objective
  // should leave source/target features hard to tell apart.
  const auto& task = stream->task(stream->num_tasks() - 1);
  const auto& model = trainer.model();
  NoGradGuard no_grad;
  auto encode = [&](const data::TensorDataset& ds) {
    std::vector<int64_t> idx(static_cast<size_t>(ds.size()));
    for (int64_t i = 0; i < ds.size(); ++i) idx[static_cast<size_t>(i)] = i;
    data::Batch all = ds.MakeBatch(idx);
    return model.EncodeSelf(all.images, stream->num_tasks() - 1);
  };
  Tensor fs = encode(task.source_test);
  Tensor ft = encode(task.target_test);
  Rng rng(3);
  std::printf("\nfinal-task feature discrepancy: proxy-A=%.3f (0=aligned, "
              "2=separable), MMD=%.4f\n",
              uda::ProxyADistance(fs, ft, &rng), uda::MmdRbf(fs, ft));
  return 0;
}
