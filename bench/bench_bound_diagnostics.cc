// Theorem 3 diagnostics: measures the empirical terms of the target-error
// bound (per-task source error, feature-space proxy A-distance, memory KL)
// on a trained CDCL model and checks the observed mean target error sits
// under the accumulated right-hand side.

#include <cstdio>

#include "cl/experiment.h"
#include "core/bound_diagnostics.h"
#include "core/cdcl_trainer.h"
#include "core/driver.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace cdcl;  // NOLINT: bench brevity

  core::ExperimentSpec spec;
  spec.family = "office31";
  spec.source_domain = "A";
  spec.target_domain = "W";
  spec.num_tasks = 4;
  spec.classes_per_task = 4;
  spec.train_per_class = 10;
  spec.test_per_class = 6;
  spec.seed = 1;

  baselines::TrainerOptions options;
  options.model.channels = 3;
  options.model.embed_dim = 32;
  options.epochs = 12;
  options.warmup_epochs = 4;
  options.memory_size = 120;
  core::ApplyEnvOverrides(&spec, &options);

  std::printf("== Theorem 3 bound diagnostics (office31 A->W) ==\n");
  Stopwatch timer;

  data::TaskStreamOptions stream_opt;
  stream_opt.family = spec.family;
  stream_opt.source_domain = spec.source_domain;
  stream_opt.target_domain = spec.target_domain;
  stream_opt.num_tasks = spec.num_tasks;
  stream_opt.classes_per_task = spec.classes_per_task;
  stream_opt.train_per_class = spec.train_per_class;
  stream_opt.test_per_class = spec.test_per_class;
  stream_opt.seed = spec.seed;
  auto stream = data::CrossDomainTaskStream::Make(stream_opt);
  if (!stream.ok()) {
    std::fprintf(stderr, "ERROR %s\n", stream.status().ToString().c_str());
    return 1;
  }

  core::CdclOptions opt;
  opt.base = options;
  opt.base.seed = spec.seed;
  core::CdclTrainer trainer(opt);
  auto result = cl::RunContinualExperiment(&trainer, *stream);
  if (!result.ok()) {
    std::fprintf(stderr, "ERROR %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::vector<core::BoundTerms> terms =
      core::ComputeBoundDiagnostics(trainer, *stream);
  TablePrinter table({"task", "eps_S (src err)", "lambda (proxy-A/2)",
                      "KL(P_M||P_R)", "eps_T (tgt err)"});
  for (const core::BoundTerms& t : terms) {
    table.AddRow({StrFormat("%lld", static_cast<long long>(t.task_id)),
                  StrFormat("%.3f", t.source_error),
                  StrFormat("%.3f", t.lambda), StrFormat("%.3f", t.memory_kl),
                  StrFormat("%.3f", t.target_error)});
  }
  table.Print();

  core::BoundSummary summary = core::SummarizeBound(terms);
  std::printf("\nbound RHS (sum eps_S + lambda + KL, excl. C*): %.3f\n",
              summary.bound_rhs);
  std::printf("observed mean target error:                   %.3f\n",
              summary.observed_error);
  std::printf("bound %s\n",
              summary.observed_error <= summary.bound_rhs ? "HOLDS" : "VIOLATED");
  std::printf("total wall time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
