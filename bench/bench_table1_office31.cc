// Table I (Office-31 block): the six A/D/W transfer pairs, 30 classes in 5
// tasks of 6. Quick default shrinks per-class sample counts; scale up with
// CDCL_TRAIN_PER_CLASS / CDCL_EPOCHS.
//
// Paper reference shape: CDCL TIL ACC 26.22 (A->D) ... 55.44 (D->W), i.e.
// the D<->W pairs are much easier than pairs involving A; baselines sit in
// the single digits; TVT saturates.

#include "table_harness.h"

int main() {
  cdcl::bench::TableBenchConfig config;
  config.title = "Table I - Office-31 (synthetic substitution)";
  config.family = "office31";
  config.pairs = {{"A", "D", "A->D"}, {"A", "W", "A->W"}, {"D", "A", "D->A"},
                  {"D", "W", "D->W"}, {"W", "A", "W->A"}, {"W", "D", "W->D"}};
  config.paper_til_acc = {26.22, 22.43, 28.74, 55.44, 26.54, 53.21};

  config.spec.num_tasks = 5;
  config.spec.classes_per_task = 6;
  config.spec.train_per_class = 8;
  config.spec.test_per_class = 5;

  config.options.model.channels = 3;
  config.options.model.embed_dim = 32;
  config.options.model.num_layers = 2;
  config.options.epochs = 24;
  config.options.warmup_epochs = 10;
  config.options.memory_size = 150;

  config.methods = {"DER",       "DER++",     "HAL",  "MSL", "CDTrans-S",
                    "CDTrans-B", "CDCL", "TVT"};
  return cdcl::bench::RunTableBench(std::move(config));
}
