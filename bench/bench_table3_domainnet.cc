// Table III: DomainNet, the full 6x6 source->target matrix per method
// (clp/inf/pnt/qdr/rel/skt). Printed in the paper's matrix layout: rows are
// source domains, columns target domains.
//
// The paper runs 345 classes in 15 tasks of 23. Quick default: 5 tasks of 2
// classes and a reduced default method set (the full 8-method sweep over 30
// pairs is expensive); the cap is logged and lifted via
//   CDCL_METHODS=DER,DER++,HAL,MSL,CDTrans-S,CDTrans-B,CDCL,TVT CDCL_TASKS=15
//
// Paper reference shape: CDCL is the only continual method with a real
// learning signal (TIL 2-27%), all baselines sit near 0.5%; columns
// involving quickdraw (qdr) are the hardest for everyone.

#include <cstdio>
#include <map>
#include <mutex>

#include "cl/metrics.h"
#include "core/driver.h"
#include "table_harness.h"
#include "tensor/kernels/parallel.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace cdcl;  // NOLINT: bench brevity

const char* kDomains[] = {"clp", "inf", "pnt", "qdr", "rel", "skt"};

}  // namespace

int main() {
  core::ExperimentSpec spec;
  spec.family = "domainnet";
  spec.num_tasks = 5;
  spec.classes_per_task = 2;
  spec.train_per_class = 10;
  spec.test_per_class = 6;

  baselines::TrainerOptions options;
  options.model.channels = 3;
  options.model.embed_dim = 32;
  options.model.num_layers = 2;
  options.epochs = 14;
  options.warmup_epochs = 5;
  options.memory_size = 120;
  core::ApplyEnvOverrides(&spec, &options);

  std::vector<std::string> methods =
      EnvStringList("CDCL_METHODS", {"DER", "HAL", "CDTrans-S", "CDCL", "TVT"});
  const int64_t threads = bench::ConfigureBenchThreads();

  std::printf("== Table III - DomainNet 6x6 (synthetic substitution) ==\n");
  std::printf(
      "tasks=%lld classes/task=%lld train/class=%lld epochs=%lld threads=%lld\n",
      static_cast<long long>(spec.num_tasks),
      static_cast<long long>(spec.classes_per_task),
      static_cast<long long>(spec.train_per_class),
      static_cast<long long>(options.epochs), static_cast<long long>(threads));
  std::printf(
      "NOTE: default runs a reduced method set (%zu of 8 paper methods) and "
      "%lld of the paper's 15 tasks; override with CDCL_METHODS / "
      "CDCL_TASKS.\n",
      methods.size(), static_cast<long long>(spec.num_tasks));

  struct Key {
    std::string method;
    int s, t;
    bool operator<(const Key& o) const {
      return std::tie(method, s, t) < std::tie(o.method, o.s, o.t);
    }
  };
  std::map<Key, cl::ContinualResult> results;
  std::mutex mu;
  std::vector<std::string> errors;

  struct Cell {
    std::string method;
    int s, t;
  };
  std::vector<Cell> cells;
  for (const auto& method : methods) {
    for (int s = 0; s < 6; ++s) {
      for (int t = 0; t < 6; ++t) {
        if (s == t) continue;
        cells.push_back({method, s, t});
      }
    }
  }

  Stopwatch timer;
  kernels::ParallelFor(static_cast<int64_t>(cells.size()), 1, [&](int64_t i) {
    const Cell& cell = cells[static_cast<size_t>(i)];
    core::ExperimentSpec cell_spec = spec;
    cell_spec.source_domain = kDomains[cell.s];
    cell_spec.target_domain = kDomains[cell.t];
    cell_spec.seed = 1;
    Result<cl::ContinualResult> result =
        core::RunMethodOnPair(cell.method, cell_spec, options);
    std::lock_guard<std::mutex> lock(mu);
    if (!result.ok()) {
      errors.push_back(cell.method + ": " + result.status().ToString());
      return;
    }
    results.emplace(Key{cell.method, cell.s, cell.t}, std::move(*result));
  });
  if (!errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "ERROR %s\n", e.c_str());
    return 1;
  }

  auto print_matrix = [&](const std::string& method, const char* block,
                          auto value_fn) {
    std::printf("\n-- %s (%s) --\n", method.c_str(), block);
    std::vector<std::string> header = {"src\\tgt"};
    for (const char* d : kDomains) header.push_back(d);
    TablePrinter table(header);
    for (int s = 0; s < 6; ++s) {
      std::vector<std::string> row = {kDomains[s]};
      for (int t = 0; t < 6; ++t) {
        if (s == t) {
          row.push_back("-");
          continue;
        }
        row.push_back(
            StrFormat("%.2f", value_fn(results.at(Key{method, s, t}))));
      }
      table.AddRow(row);
    }
    table.Print();
  };

  for (const auto& method : methods) {
    if (method == "TVT") {
      print_matrix(method, "Static UDA", [](const cl::ContinualResult& r) {
        return 100.0 * r.til_acc();
      });
      continue;
    }
    print_matrix(method, "TIL ACC", [](const cl::ContinualResult& r) {
      return 100.0 * r.til_acc();
    });
    if (method == "CDCL") {
      print_matrix(method, "TIL FGT", [](const cl::ContinualResult& r) {
        return 100.0 * r.til_fgt();
      });
      print_matrix(method, "CIL ACC", [](const cl::ContinualResult& r) {
        return 100.0 * r.cil_acc();
      });
    }
  }
  std::printf("\npaper shape check: CDCL TIL should dominate the baselines "
              "and qdr columns should be the weakest.\n");
  std::printf("total wall time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
