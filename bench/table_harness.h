// Shared harness for the paper-table benchmark binaries. Each bench binary
// declares its source->target pairs plus defaults and calls RunTableBench(),
// which fans the (method x pair x seed) cells out over a thread pool and
// prints the paper's row/column layout (TIL block, CIL block, TVT row).
//
// Env knobs (read on top of the per-bench defaults):
//   CDCL_METHODS       comma list; default per bench
//   CDCL_SEEDS         number of seeds averaged (default 1)
//   CDCL_NUM_THREADS   worker threads for the shared kernel pool (default:
//                      hardware concurrency; CDCL_THREADS is a legacy alias)
//   CDCL_GEMM_KERNEL   pin the GEMM dispatcher (auto|scalar|packed)
//   CDCL_FUSED_EVAL    0 disables the fused batched inference path (bitwise
//                      identical either way; escape hatch only)
//   CDCL_EVAL_BATCH    batch size for the inference-only passes (default:
//                      CDCL_BATCH; larger feeds the fused path wider GEMMs)
//   CDCL_EPOCHS, CDCL_WARMUP, CDCL_BATCH, CDCL_MEMORY,
//   CDCL_TASKS, CDCL_TRAIN_PER_CLASS, CDCL_TEST_PER_CLASS,
//   CDCL_EMBED_DIM, CDCL_LAYERS (see core/driver.h)
//
// Cells fan out over the process-wide KernelContext pool (no private pool):
// a cell body runs inside the pool's parallel region, so the tensor kernels
// it reaches collapse to serial inline execution — coarse cell parallelism
// outside, per-op parallelism only when cells are fewer than workers.

#ifndef CDCL_BENCH_TABLE_HARNESS_H_
#define CDCL_BENCH_TABLE_HARNESS_H_

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cl/metrics.h"
#include "core/driver.h"
#include "tensor/kernels/kernel_context.h"
#include "tensor/kernels/parallel.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace cdcl {
namespace bench {

/// Applies the harness thread knobs to the shared kernel pool and returns
/// the resolved count. CDCL_THREADS (the pre-unification knob) still works
/// as an alias but never overrides CDCL_NUM_THREADS, which KernelContext
/// itself resolves.
inline int64_t ConfigureBenchThreads() {
  const int64_t legacy = EnvInt("CDCL_THREADS", 0);
  if (legacy > 0 && EnvInt("CDCL_NUM_THREADS", 0) <= 0) {
    kernels::SetNumThreads(legacy);
  }
  return kernels::GetNumThreads();
}

struct PairSpec {
  std::string source;
  std::string target;
  std::string label;  // e.g. "A->W"
};

struct TableBenchConfig {
  std::string title;
  std::string family;
  std::vector<PairSpec> pairs;
  core::ExperimentSpec spec;               // num_tasks etc. (family filled in)
  baselines::TrainerOptions options;
  std::vector<std::string> methods;        // default method set
  /// Methods shown in the TIL block only (the paper omits CDTrans from CIL).
  std::vector<std::string> til_only_methods = {"CDTrans-S", "CDTrans-B"};
  /// Optional per-pair paper reference ACC (TIL block, "Ours"), for context.
  std::vector<double> paper_til_acc;
};

struct CellResult {
  cl::MetricSummary til_acc, til_fgt, cil_acc, cil_fgt;
};

inline bool Contains(const std::vector<std::string>& v, const std::string& s) {
  for (const auto& x : v) {
    if (x == s) return true;
  }
  return false;
}

/// Runs all cells and prints the table; returns non-zero on failure.
inline int RunTableBench(TableBenchConfig config) {
  core::ApplyEnvOverrides(&config.spec, &config.options);
  config.methods = EnvStringList("CDCL_METHODS", config.methods);
  const int64_t seeds = EnvInt("CDCL_SEEDS", 1);
  const int64_t threads = ConfigureBenchThreads();
  config.spec.family = config.family;

  std::printf("== %s ==\n", config.title.c_str());
  std::printf(
      "family=%s tasks=%lld classes/task=%lld train/class=%lld epochs=%lld "
      "warmup=%lld memory=%lld seeds=%lld threads=%lld\n",
      config.family.c_str(), static_cast<long long>(config.spec.num_tasks),
      static_cast<long long>(config.spec.classes_per_task),
      static_cast<long long>(config.spec.train_per_class),
      static_cast<long long>(config.options.epochs),
      static_cast<long long>(config.options.warmup_epochs),
      static_cast<long long>(config.options.memory_size),
      static_cast<long long>(seeds), static_cast<long long>(threads));

  struct Cell {
    std::string method;
    size_t pair_index;
    uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const std::string& method : config.methods) {
    for (size_t p = 0; p < config.pairs.size(); ++p) {
      for (int64_t s = 0; s < seeds; ++s) {
        cells.push_back({method, p, static_cast<uint64_t>(s + 1)});
      }
    }
  }

  std::mutex mu;
  std::map<std::pair<std::string, size_t>, std::vector<cl::ContinualResult>>
      raw;
  std::vector<std::string> errors;
  Stopwatch timer;
  kernels::ParallelFor(static_cast<int64_t>(cells.size()), 1, [&](int64_t i) {
    const Cell& cell = cells[static_cast<size_t>(i)];
    core::ExperimentSpec spec = config.spec;
    spec.source_domain = config.pairs[cell.pair_index].source;
    spec.target_domain = config.pairs[cell.pair_index].target;
    spec.seed = cell.seed;
    Result<cl::ContinualResult> result =
        core::RunMethodOnPair(cell.method, spec, config.options);
    std::lock_guard<std::mutex> lock(mu);
    if (!result.ok()) {
      errors.push_back(cell.method + "/" +
                       config.pairs[cell.pair_index].label + ": " +
                       result.status().ToString());
      return;
    }
    raw[{cell.method, cell.pair_index}].push_back(std::move(*result));
  });
  if (!errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "ERROR %s\n", e.c_str());
    return 1;
  }

  auto summarize = [&](const std::string& method, size_t pair) {
    CellResult out;
    std::vector<double> ta, tf, ca, cf;
    for (const cl::ContinualResult& r : raw[{method, pair}]) {
      ta.push_back(100.0 * r.til_acc());
      tf.push_back(100.0 * r.til_fgt());
      ca.push_back(100.0 * r.cil_acc());
      cf.push_back(100.0 * r.cil_fgt());
    }
    out.til_acc = cl::Summarize(ta);
    out.til_fgt = cl::Summarize(tf);
    out.cil_acc = cl::Summarize(ca);
    out.cil_fgt = cl::Summarize(cf);
    return out;
  };

  std::vector<std::string> header = {"Method"};
  for (const PairSpec& p : config.pairs) header.push_back(p.label);

  // TIL block.
  std::printf("\n-- TIL: average accuracy ACC (%%) --\n");
  TablePrinter til(header);
  for (const std::string& method : config.methods) {
    if (method == "TVT") continue;  // printed as the closing upper-bound row
    std::vector<std::string> row = {method == "CDCL" ? "Ours (ACC)" : method};
    for (size_t p = 0; p < config.pairs.size(); ++p) {
      row.push_back(StrFormat("%.2f", summarize(method, p).til_acc.mean));
    }
    til.AddRow(row);
  }
  if (Contains(config.methods, "CDCL")) {
    std::vector<std::string> row = {"Ours (FGT)"};
    for (size_t p = 0; p < config.pairs.size(); ++p) {
      row.push_back(StrFormat("%.2f", summarize("CDCL", p).til_fgt.mean));
    }
    til.AddRow(row);
  }
  if (!config.paper_til_acc.empty() &&
      config.paper_til_acc.size() == config.pairs.size()) {
    std::vector<std::string> row = {"paper Ours (ACC)"};
    for (double v : config.paper_til_acc) row.push_back(StrFormat("%.2f", v));
    til.AddRow(row);
  }
  til.Print();

  // CIL block (paper omits CDTrans here).
  std::printf("\n-- CIL: average accuracy ACC (%%) --\n");
  TablePrinter cil(header);
  for (const std::string& method : config.methods) {
    if (method == "TVT" || Contains(config.til_only_methods, method)) continue;
    std::vector<std::string> row = {method == "CDCL" ? "Ours (ACC)" : method};
    for (size_t p = 0; p < config.pairs.size(); ++p) {
      row.push_back(StrFormat("%.2f", summarize(method, p).cil_acc.mean));
    }
    cil.AddRow(row);
  }
  if (Contains(config.methods, "CDCL")) {
    std::vector<std::string> row = {"Ours (FGT)"};
    for (size_t p = 0; p < config.pairs.size(); ++p) {
      row.push_back(StrFormat("%.2f", summarize("CDCL", p).cil_fgt.mean));
    }
    cil.AddRow(row);
  }
  cil.Print();

  // Static upper bound.
  if (Contains(config.methods, "TVT")) {
    std::printf("\n-- Static UDA upper bound --\n");
    TablePrinter tvt(header);
    std::vector<std::string> row = {"TVT (Static UDA)"};
    for (size_t p = 0; p < config.pairs.size(); ++p) {
      row.push_back(StrFormat("%.2f", summarize("TVT", p).til_acc.mean));
    }
    tvt.AddRow(row);
    tvt.Print();
  }

  std::printf("\ntotal wall time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace bench
}  // namespace cdcl

#endif  // CDCL_BENCH_TABLE_HARNESS_H_
