// Kernel-dispatch throughput benchmark: blocked/packed/parallel kernels vs
// the pre-kernel serial seed loops, at 1, 2 and N worker threads. The matmul
// rows pin the dispatcher to one kernel each (blocked scalar tile vs the
// packed-B SIMD path) so the packed-vs-blocked trajectory is recorded per
// run; the conv row times a full forward+backward step through the parallel
// per-chunk grad-scratch path; the attention rows time the fused batched
// inference path against the per-sample eval loop it replaces (both at 8
// threads too, the acceptance shape for the batched-eval PR) and the same
// path under the reduced-precision weight modes (CDCL_GEMM_PRECISION);
// the matmul_bf16/int8 rows time the pre-packed quantized GEMM kernels, and
// a snapshot-footprint block reports the quantized published-weight and
// CompactFloats byte sizes vs fp32. Prints the usual aligned table and
// emits a BENCH_kernels.json report for tracking.
//
// Env knobs:
//   CDCL_BENCH_REPS   timing repetitions, best-of (default 3)
//   CDCL_BENCH_OUT    JSON report path (default BENCH_kernels.json)
//   CDCL_BENCH_MM     matmul dimension (default 512, i.e. 512^3)
//   CDCL_BENCH_ATTN   batched-attention batch size (default 128)

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "cl/memory.h"
#include "models/compact_transformer.h"
#include "nn/attention.h"
#include "nn/module.h"
#include "optim/optimizer.h"
#include "tensor/arena.h"
#include "tensor/kernels/kernel_context.h"
#include "tensor/kernels/layernorm.h"
#include "tensor/kernels/matmul_kernel.h"
#include "tensor/kernels/matmul_quant.h"
#include "tensor/kernels/parallel.h"
#include "tensor/kernels/vec_math.h"
#include "tensor/quantized.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/env.h"
#include "util/pipeline.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace cdcl;  // NOLINT: bench brevity

std::vector<float> RandVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

/// Best-of-`reps` wall time in milliseconds.
template <typename Fn>
double TimeMs(int64_t reps, Fn&& fn) {
  double best = 0.0;
  for (int64_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// The seed repo's serial matmul loop, kept verbatim as the baseline.
void SeedMatMul(int64_t m, int64_t n, int64_t k, const float* pa,
                const float* pb, float* po) {
  for (int64_t i = 0; i < m * n; ++i) po[i] = 0.0f;
  for (int64_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

struct BenchRow {
  std::string op;
  std::string size;
  double serial_ms = 0.0;
  std::vector<std::pair<int64_t, double>> per_thread_ms;

  double ThreadMs(int64_t threads) const {
    for (const auto& [t, ms] : per_thread_ms) {
      if (t == threads) return ms;
    }
    return 0.0;
  }
};

/// Headline ratios surfaced at the top of the JSON report (each one a
/// speedup or a bytes-vs-fp32 ratio; see the section that computes it).
struct Headlines {
  double packed_vs_blocked_1t = 0.0;
  double batched_attention_8t = 0.0;
  double train_step_fused_arena_1t = 0.0;
  double train_step_fused_arena_8t = 0.0;
  double vec_exp_1t = 0.0;
  double vec_tanh_1t = 0.0;
  double layernorm_fused_1t = 0.0;
  double quant_attn_bf16_1t = 0.0;
  double quant_attn_int8_1t = 0.0;
  double snapshot_weights_bf16_vs_fp32 = 0.0;
  double snapshot_weights_int8_vs_fp32 = 0.0;
  double dispatch_overhead_old_vs_new = 0.0;
  double train_step_pipelined_8t = 0.0;
};

void WriteJson(const std::string& path, const std::vector<BenchRow>& rows,
               const Headlines& h) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"tensor_kernels\",\n"
               "  \"packed_vs_blocked_1t\": %.3f,\n"
               "  \"batched_attention_8t\": %.3f,\n"
               "  \"train_step_fused_arena_1t\": %.3f,\n"
               "  \"train_step_fused_arena_8t\": %.3f,\n"
               "  \"vec_exp_1t\": %.3f,\n"
               "  \"vec_tanh_1t\": %.3f,\n"
               "  \"layernorm_fused_1t\": %.3f,\n"
               "  \"quant_attn_bf16_1t\": %.3f,\n"
               "  \"quant_attn_int8_1t\": %.3f,\n"
               "  \"snapshot_weights_bf16_vs_fp32\": %.3f,\n"
               "  \"snapshot_weights_int8_vs_fp32\": %.3f,\n"
               "  \"dispatch_overhead_old_vs_new\": %.3f,\n"
               "  \"train_step_pipelined_8t\": %.3f,\n"
               "  \"results\": [\n",
               h.packed_vs_blocked_1t, h.batched_attention_8t,
               h.train_step_fused_arena_1t, h.train_step_fused_arena_8t,
               h.vec_exp_1t, h.vec_tanh_1t, h.layernorm_fused_1t,
               h.quant_attn_bf16_1t, h.quant_attn_int8_1t,
               h.snapshot_weights_bf16_vs_fp32,
               h.snapshot_weights_int8_vs_fp32,
               h.dispatch_overhead_old_vs_new, h.train_step_pipelined_8t);
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::fprintf(f, "    {\"op\": \"%s\", \"size\": \"%s\", \"serial_ms\": %.3f, ",
                 r.op.c_str(), r.size.c_str(), r.serial_ms);
    std::fprintf(f, "\"threads_ms\": {");
    for (size_t t = 0; t < r.per_thread_ms.size(); ++t) {
      std::fprintf(f, "%s\"%lld\": %.3f", t == 0 ? "" : ", ",
                   static_cast<long long>(r.per_thread_ms[t].first),
                   r.per_thread_ms[t].second);
    }
    const double t4 = r.ThreadMs(4);
    std::fprintf(f, "}, \"speedup_4t_vs_serial\": %.3f}%s\n",
                 t4 > 0.0 ? r.serial_ms / t4 : 0.0,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const int64_t reps = EnvInt("CDCL_BENCH_REPS", 3);
  const int64_t mm = EnvInt("CDCL_BENCH_MM", 512);
  const std::string out_path =
      EnvString("CDCL_BENCH_OUT", "BENCH_kernels.json");
  std::vector<int64_t> thread_counts = {1, 2, 4};
  // Sections that pin a numerics mode (layernorm serial leg, the train-step
  // seed/fused protocol) restore this ambient CDCL_VEC_MATH mode so the
  // other rows honor the requested environment.
  const bool ambient_vec_math = kernels::VecMathEnabled();
  kernels::SetNumThreads(0);
  const int64_t hw = kernels::GetNumThreads();
  if (hw > 4) thread_counts.push_back(hw);

  std::printf(
      "== tensor kernel throughput (reps=%lld, hw threads=%lld, "
      "avx2=%d) ==\n",
      static_cast<long long>(reps), static_cast<long long>(hw),
      kernels::CpuHasAvx2Fma() ? 1 : 0);
  std::vector<BenchRow> rows;

  // --- MatMul: mm x mm x mm, blocked scalar tile vs packed SIMD path --------
  {
    const int64_t m = mm, n = mm, k = mm;
    const std::vector<float> a = RandVec(m * k, 1), b = RandVec(k * n, 2);
    std::vector<float> c(static_cast<size_t>(m * n));
    const std::string size =
        StrFormat("%lldx%lldx%lld", static_cast<long long>(m),
                  static_cast<long long>(k), static_cast<long long>(n));
    const double seed_serial_ms =
        TimeMs(reps, [&] { SeedMatMul(m, n, k, a.data(), b.data(), c.data()); });
    const struct {
      const char* op;
      kernels::GemmKernel kernel;
    } kMatmulRows[] = {
        {"matmul_blocked", kernels::GemmKernel::kScalar},
        {"matmul_packed", kernels::GemmKernel::kPacked},
        {"matmul_auto", kernels::GemmKernel::kAuto},
    };
    for (const auto& spec : kMatmulRows) {
      BenchRow row;
      row.op = spec.op;
      row.size = size;
      row.serial_ms = seed_serial_ms;
      kernels::SetGemmKernel(spec.kernel);
      for (int64_t t : thread_counts) {
        kernels::SetNumThreads(t);
        row.per_thread_ms.emplace_back(t, TimeMs(reps, [&] {
          kernels::GemmNN(m, n, k, a.data(), b.data(), c.data(), false);
        }));
      }
      kernels::SetGemmKernel(kernels::GemmKernel::kAuto);
      rows.push_back(row);
    }

    // Reduced-precision weight tiers on the same shape. B is packed outside
    // the timed region — that is the deployment story (QuantizedBlock is
    // built once per published parameter set), so the loop times exactly the
    // per-call eval GEMM cost. Compare against matmul_packed, which pays a
    // per-call fp32 repack.
    {
      const int64_t panels =
          (n + kernels::kQuantPanel - 1) / kernels::kQuantPanel;
      std::vector<uint16_t> b16(
          static_cast<size_t>(panels * k * kernels::kQuantPanel));
      kernels::PackBf16NN(k, n, b.data(), b16.data());
      std::vector<int8_t> q(
          static_cast<size_t>(panels * k * kernels::kQuantPanel));
      std::vector<float> scales(
          static_cast<size_t>(panels * kernels::kQuantPanel));
      kernels::PackInt8NN(k, n, b.data(), q.data(), scales.data());
      BenchRow bf_row, i8_row;
      bf_row.op = "matmul_bf16_packed";
      i8_row.op = "matmul_int8_packed";
      bf_row.size = i8_row.size = size;
      bf_row.serial_ms = i8_row.serial_ms = seed_serial_ms;
      for (int64_t t : thread_counts) {
        kernels::SetNumThreads(t);
        bf_row.per_thread_ms.emplace_back(t, TimeMs(reps, [&] {
          kernels::GemmNNBf16Packed(m, n, k, a.data(), b16.data(), c.data(),
                                    false);
        }));
        i8_row.per_thread_ms.emplace_back(t, TimeMs(reps, [&] {
          kernels::GemmNNInt8Packed(m, n, k, a.data(), q.data(), scales.data(),
                                    c.data(), false);
        }));
      }
      rows.push_back(bf_row);
      rows.push_back(i8_row);
    }
  }

  // --- Conv2d forward+backward through the parallel grad-scratch path -------
  {
    const int64_t cb = 8, cc = 8, chw = 32, co = 16, ck = 3;
    Rng rng(6);
    Tensor x = Tensor::Randn(Shape{cb, cc, chw, chw}, &rng, 1.0f, true);
    Tensor w = Tensor::Randn(Shape{co, cc, ck, ck}, &rng, 1.0f, true);
    Tensor bias = Tensor::Randn(Shape{co}, &rng, 1.0f, true);
    auto step = [&] {
      x.ZeroGrad();
      w.ZeroGrad();
      bias.ZeroGrad();
      Tensor loss = ops::Sum(ops::Conv2d(x, w, bias, 1, 1));
      loss.Backward();
    };
    BenchRow row;
    row.op = "conv2d_fwd_bwd";
    row.size = StrFormat("b%lld %lldx%lldx%lld k%lld o%lld",
                         static_cast<long long>(cb), static_cast<long long>(cc),
                         static_cast<long long>(chw),
                         static_cast<long long>(chw), static_cast<long long>(ck),
                         static_cast<long long>(co));
    kernels::SetNumThreads(1);
    row.serial_ms = TimeMs(reps, step);
    for (int64_t t : thread_counts) {
      kernels::SetNumThreads(t);
      row.per_thread_ms.emplace_back(t, TimeMs(reps, step));
    }
    rows.push_back(row);
  }

  // --- Vectorized transcendentals vs the libm scalar loops ------------------
  // The serial column is the pre-tier numerics (CDCL_VEC_MATH=0): a plain
  // libm sweep at one thread. The per-thread columns run the polynomial
  // SIMD tier through the parallel maps — the same kernels the GELU/softmax
  // epilogues and the op-path activations dispatch to.
  double vec_exp_1t = 0.0, vec_tanh_1t = 0.0, layernorm_fused_1t = 0.0;
  {
    const int64_t n = int64_t{1} << 20;
    std::vector<float> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      x[static_cast<size_t>(i)] =
          -6.0f + 12.0f * static_cast<float>(i % 4096) / 4096.0f;
    }
    const float* px = x.data();
    float* py = y.data();
    struct VecSpec {
      const char* op;
      void (*libm)(int64_t, const float*, float*);
      void (*vec)(int64_t, const float*, float*);
      double* headline;
    };
    const VecSpec kVecRows[] = {
        {"vec_exp",
         [](int64_t count, const float* in, float* out) {
           for (int64_t i = 0; i < count; ++i) out[i] = std::exp(in[i]);
         },
         &kernels::ExpMapVec, &vec_exp_1t},
        {"vec_tanh",
         [](int64_t count, const float* in, float* out) {
           for (int64_t i = 0; i < count; ++i) out[i] = std::tanh(in[i]);
         },
         &kernels::TanhMapVec, &vec_tanh_1t},
    };
    for (const VecSpec& spec : kVecRows) {
      BenchRow row;
      row.op = spec.op;
      row.size = StrFormat("%lld", static_cast<long long>(n));
      kernels::SetNumThreads(1);
      row.serial_ms = TimeMs(reps, [&] { spec.libm(n, px, py); });
      for (int64_t t : thread_counts) {
        kernels::SetNumThreads(t);
        row.per_thread_ms.emplace_back(t, TimeMs(reps, [&] {
          spec.vec(n, px, py);
        }));
      }
      *spec.headline = row.ThreadMs(1) > 0.0 ? row.serial_ms / row.ThreadMs(1)
                                             : 0.0;
      rows.push_back(row);
    }
  }

  // --- Fused LayerNorm forward: vectorized moments vs the legacy rows -------
  // Paper-shape rows (d=24): serial = legacy serial moments (CDCL_VEC_MATH=0)
  // at one thread; per-thread = the virtual-lane vectorized kernel the fused
  // sublayer nodes and ops::LayerNorm share.
  {
    const int64_t lrows = int64_t{1} << 16, ld = 24;
    const std::vector<float> x = RandVec(lrows * ld, 11);
    std::vector<float> o(static_cast<size_t>(lrows * ld));
    std::vector<float> inv(static_cast<size_t>(lrows));
    std::vector<float> hat(static_cast<size_t>(lrows * ld));
    const std::vector<float> gamma = RandVec(ld, 12), beta = RandVec(ld, 13);
    auto fwd = [&] {
      kernels::LayerNormForwardRows(lrows, ld, x.data(), gamma.data(),
                                    beta.data(), 1e-5f, o.data(), inv.data(),
                                    hat.data());
    };
    BenchRow row;
    row.op = "layernorm_fused";
    row.size = StrFormat("%lldx%lld", static_cast<long long>(lrows),
                         static_cast<long long>(ld));
    kernels::SetNumThreads(1);
    kernels::SetVecMath(false);
    row.serial_ms = TimeMs(reps, fwd);
    kernels::SetVecMath(true);
    for (int64_t t : thread_counts) {
      kernels::SetNumThreads(t);
      row.per_thread_ms.emplace_back(t, TimeMs(reps, fwd));
    }
    kernels::SetVecMath(ambient_vec_math);
    layernorm_fused_1t =
        row.ThreadMs(1) > 0.0 ? row.serial_ms / row.ThreadMs(1) : 0.0;
    rows.push_back(row);
  }

  double quant_attn_bf16_1t = 0.0, quant_attn_int8_1t = 0.0;

  // --- Batched fused attention vs the per-sample eval loop ------------------
  // Paper-model eval shape: seq 16 tokens (image_hw=16 through the 2-layer
  // tokenizer) at embed_dim 24 (ModelConfig::Small). Per-sample, every GEMM
  // sits below the packed-SIMD work floor and runs on the scalar tile; the
  // flattened (b*n, d) batched projections cross it, which is the fused
  // path's headline win on the table benches.
  {
    const int64_t ab = EnvInt("CDCL_BENCH_ATTN", 128), an = 16, ad = 24;
    Rng rng(7);
    nn::TaskConditionedAttention attn(ad, an, &rng);
    attn.AddTask();
    attn.SetTraining(false);
    Tensor x = Tensor::Randn(Shape{ab, an, ad}, &rng);
    NoGradGuard no_grad;
    // The pre-batching eval shape: one sample at a time through the op-by-op
    // attention (per-sample projections, scores, softmax, scores*V).
    auto per_sample = [&] {
      for (int64_t i = 0; i < ab; ++i) {
        Tensor y = attn.SelfAttention(ops::Slice0(x, i, 1), 0);
        (void)y;
      }
    };
    auto batched = [&] {
      Tensor y = attn.SelfAttentionFused(x, 0);
      (void)y;
    };
    // The acceptance shape for the batched-eval path is 8 threads; make sure
    // it is timed even when the default ladder stops earlier.
    std::vector<int64_t> attn_threads = thread_counts;
    if (std::find(attn_threads.begin(), attn_threads.end(), int64_t{8}) ==
        attn_threads.end()) {
      attn_threads.push_back(8);
    }
    const std::string size =
        StrFormat("b%lld n%lld d%lld", static_cast<long long>(ab),
                  static_cast<long long>(an), static_cast<long long>(ad));
    kernels::SetNumThreads(1);
    const double per_sample_1t = TimeMs(reps, per_sample);
    BenchRow loop_row, fused_row;
    loop_row.op = "attn_eval_persample";
    fused_row.op = "attn_eval_batched";
    loop_row.size = fused_row.size = size;
    loop_row.serial_ms = fused_row.serial_ms = per_sample_1t;
    for (int64_t t : attn_threads) {
      kernels::SetNumThreads(t);
      loop_row.per_thread_ms.emplace_back(t, TimeMs(reps, per_sample));
      fused_row.per_thread_ms.emplace_back(t, TimeMs(reps, batched));
    }
    rows.push_back(loop_row);
    rows.push_back(fused_row);

    // Quantized eval modes through the same fused batched path: the
    // projections consume the cached QuantizedBlock (Linear::EvalGemm), the
    // score/softmax/V epilogues stay fp32. The headline comparison is vs the
    // fp32 fused path at 1 thread.
    const double attn_fp32_1t = fused_row.ThreadMs(1);
    const struct {
      kernels::GemmPrecision precision;
      const char* op;
      double* headline;
    } kQuantAttnRows[] = {
        {kernels::GemmPrecision::kBf16, "attn_eval_batched_bf16",
         &quant_attn_bf16_1t},
        {kernels::GemmPrecision::kInt8, "attn_eval_batched_int8",
         &quant_attn_int8_1t},
    };
    for (const auto& spec : kQuantAttnRows) {
      kernels::SetGemmPrecision(spec.precision);
      batched();  // warm-up: builds the quantized weight caches
      BenchRow qrow;
      qrow.op = spec.op;
      qrow.size = size;
      qrow.serial_ms = per_sample_1t;
      for (int64_t t : attn_threads) {
        kernels::SetNumThreads(t);
        qrow.per_thread_ms.emplace_back(t, TimeMs(reps, batched));
      }
      if (attn_fp32_1t > 0.0 && qrow.ThreadMs(1) > 0.0) {
        *spec.headline = attn_fp32_1t / qrow.ThreadMs(1);
      }
      rows.push_back(qrow);
    }
    kernels::SetGemmPrecision(kernels::GemmPrecision::kFp32);
  }

  // --- Training step: EncodeCross fwd + bwd + AdamW at the paper shape ------
  // The CDCL training hot path (ModelConfig::Small: 16x16x3 images through
  // the 2-layer tokenizer -> 16 tokens at d=24, 2 encoder layers, two-stream
  // cross-encoding): one full step of cross-encoding, three CE losses,
  // backward and a fused AdamW update. The op row runs the seed training
  // runtime exactly as PR 3 left it: op-by-op tape, heap storage, the PR-2
  // work-floor-only GEMM auto dispatch (narrow-pack off), and libm
  // transcendentals (vec-math off). The fused row runs the current training
  // runtime: fused attention/FFN sublayer nodes with their pre-norm
  // LayerNorms folded in, step arena, narrow-output packed-GEMM dispatch,
  // and the vectorized transcendental tier — the defaults. Fusion and arena
  // are bitwise-invisible (tests/arena_test.cc); narrow-pack runs the same
  // per-element math on a different kernel tier (float-rounding-level
  // difference); the vec-math tier is a numerics mode (polynomial
  // exp/tanh/GELU, <= 2 ULP of libm; CDCL_VEC_MATH=0 restores the seed
  // numerics exactly).
  {
    const int64_t tb = EnvInt("CDCL_BENCH_STEP_BATCH", 16);
    const int64_t classes = 4;
    Rng rng(9);
    models::ModelConfig config = models::ModelConfig::Small(16, 3);
    models::CompactTransformer model(config, &rng);
    model.AddTask(classes);
    optim::AdamW opt(model.TrainableParameters(), 1e-4f, 0.9f, 0.999f, 1e-8f,
                     0.01f);
    Tensor xs = Tensor::Randn(Shape{tb, 3, 16, 16}, &rng);
    Tensor xt = Tensor::Randn(Shape{tb, 3, 16, 16}, &rng);
    std::vector<int64_t> labels(static_cast<size_t>(tb));
    for (int64_t i = 0; i < tb; ++i) {
      labels[static_cast<size_t>(i)] = i % classes;
    }
    Arena arena;
    auto step_on = [&](const Tensor& bxs, const Tensor& bxt) {
      ArenaScope scope(&arena);  // no-op while the arena toggle is off
      auto enc = model.EncodeCross(bxs, bxt, 0);
      Tensor loss = ops::CrossEntropy(model.CilLogits(enc.z_source), labels);
      loss = ops::Add(loss, ops::CrossEntropy(model.CilLogits(enc.z_target),
                                              labels));
      loss = ops::Add(loss, ops::CrossEntropy(model.TilLogits(enc.z_mixed, 0),
                                              labels));
      loss.Backward();
      opt.Step();
      opt.ZeroGrad();
    };
    auto step = [&] { step_on(xs, xt); };
    const std::string size = StrFormat("b%lld n16 d24 l2 x2streams",
                                       static_cast<long long>(tb));
    std::vector<int64_t> step_threads = thread_counts;
    if (std::find(step_threads.begin(), step_threads.end(), int64_t{8}) ==
        step_threads.end()) {
      step_threads.push_back(8);
    }
    BenchRow op_row, fused_row;
    op_row.op = "train_step_op";
    fused_row.op = "train_step_fused_arena";
    op_row.size = fused_row.size = size;
    auto seed_config = [] {
      SetArenaEnabled(false);
      nn::SetFusedTrain(false);
      kernels::SetGemmNarrowPack(false);
      kernels::SetVecMath(false);  // libm transcendentals: the seed numerics
    };
    auto fused_config = [] {
      SetArenaEnabled(true);
      nn::SetFusedTrain(true);
      kernels::SetGemmNarrowPack(true);
      kernels::SetVecMath(true);  // vectorized polynomial tier (the default)
    };
    // The two configurations are timed in alternation (best-of per side) so
    // slow machine-level drift over the bench run cancels out of the ratio.
    constexpr int64_t kStepsPerRep = 4;
    for (int64_t t : step_threads) {
      kernels::SetNumThreads(t);
      double best_op = 0.0, best_fused = 0.0;
      for (int64_t r = 0; r < 2 * reps; ++r) {
        seed_config();
        step();  // transition warm-up
        Stopwatch op_timer;
        for (int64_t i = 0; i < kStepsPerRep; ++i) step();
        const double op_ms = op_timer.ElapsedMillis() / kStepsPerRep;
        if (r == 0 || op_ms < best_op) best_op = op_ms;
        fused_config();
        step();
        Stopwatch fused_timer;
        for (int64_t i = 0; i < kStepsPerRep; ++i) step();
        const double fused_ms = fused_timer.ElapsedMillis() / kStepsPerRep;
        if (r == 0 || fused_ms < best_fused) best_fused = fused_ms;
      }
      op_row.per_thread_ms.emplace_back(t, best_op);
      fused_row.per_thread_ms.emplace_back(t, best_fused);
      if (t == 1) op_row.serial_ms = fused_row.serial_ms = best_op;
    }
    rows.push_back(op_row);
    rows.push_back(fused_row);

    // --- Pipelined step: batch gather overlapping the optimizer step --------
    // The CDCL_ASYNC_PIPELINE shape through the trainer loops: prepare
    // assembles batch k+1's source/target tensors from a sample pool by row
    // gather (the StackRecords/IndexRows access pattern) on the pipeline
    // thread, while the fused train step runs on batch k. The sync row is
    // the identical loop with the prepare deferred to Await — the
    // pre-pipeline execution order — so the ratio isolates the overlap win.
    {
      const int64_t pool_n = 256, per = 3 * 16 * 16;
      Rng prng(21);
      Tensor xs_pool = Tensor::Randn(Shape{pool_n, 3, 16, 16}, &prng);
      Tensor xt_pool = Tensor::Randn(Shape{pool_n, 3, 16, 16}, &prng);
      Tensor slot_xs[2] = {Tensor(Shape{tb, 3, 16, 16}),
                           Tensor(Shape{tb, 3, 16, 16})};
      Tensor slot_xt[2] = {Tensor(Shape{tb, 3, 16, 16}),
                           Tensor(Shape{tb, 3, 16, 16})};
      auto gather = [&](int64_t step_index, int slot) {
        for (int64_t j = 0; j < tb; ++j) {
          const int64_t src = (step_index * 17 + j * 5) % pool_n;
          std::memcpy(slot_xs[slot].data() + j * per,
                      xs_pool.data() + src * per,
                      static_cast<size_t>(per) * sizeof(float));
          std::memcpy(slot_xt[slot].data() + j * per,
                      xt_pool.data() + src * per,
                      static_cast<size_t>(per) * sizeof(float));
        }
      };
      constexpr int64_t kPipeSteps = 4;
      auto run_steps = [&](bool async) {
        StepPipeline pipe(async);
        int cur = 0;
        pipe.Submit([&gather, cur] { gather(0, cur); });
        for (int64_t s = 0; s < kPipeSteps; ++s) {
          pipe.Await();
          const int next = 1 - cur;
          if (s + 1 < kPipeSteps) {
            pipe.Submit([&gather, s, next] { gather(s + 1, next); });
          }
          step_on(slot_xs[cur], slot_xt[cur]);
          cur = next;
        }
      };
      fused_config();
      BenchRow sync_row, async_row;
      sync_row.op = "train_step_pipeline_sync";
      async_row.op = "train_step_pipelined";
      sync_row.size = async_row.size = size;
      for (int64_t t : step_threads) {
        kernels::SetNumThreads(t);
        run_steps(false);  // warm-up
        double best_sync = 0.0, best_async = 0.0;
        for (int64_t r = 0; r < reps; ++r) {
          Stopwatch sync_timer;
          run_steps(false);
          const double sync_ms = sync_timer.ElapsedMillis() / kPipeSteps;
          if (r == 0 || sync_ms < best_sync) best_sync = sync_ms;
          Stopwatch async_timer;
          run_steps(true);
          const double async_ms = async_timer.ElapsedMillis() / kPipeSteps;
          if (r == 0 || async_ms < best_async) best_async = async_ms;
        }
        sync_row.per_thread_ms.emplace_back(t, best_sync);
        async_row.per_thread_ms.emplace_back(t, best_async);
        if (t == 1) sync_row.serial_ms = async_row.serial_ms = best_sync;
      }
      rows.push_back(sync_row);
      rows.push_back(async_row);
    }
  }

  // --- Elementwise: suffix-broadcast add ------------------------------------
  {
    const int64_t n = int64_t{1} << 22, period = 1024;
    const std::vector<float> a = RandVec(n, 3), bias = RandVec(period, 4);
    std::vector<float> o(static_cast<size_t>(n));
    BenchRow row;
    row.op = "eltwise_broadcast_add";
    row.size = StrFormat("%lld (bias %lld)", static_cast<long long>(n),
                         static_cast<long long>(period));
    const float* pa = a.data();
    const float* pb = bias.data();
    float* po = o.data();
    // Seed loop recomputed i % nb per element.
    row.serial_ms = TimeMs(reps, [&] {
      for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i % period];
    });
    for (int64_t t : thread_counts) {
      kernels::SetNumThreads(t);
      row.per_thread_ms.emplace_back(t, TimeMs(reps, [&] {
        kernels::BroadcastMap(
            n, period, [pa, pb, po](int64_t i, int64_t j) { po[i] = pa[i] + pb[j]; });
      }));
    }
    rows.push_back(row);
  }

  // --- Reduction: full sum ---------------------------------------------------
  {
    const int64_t n = int64_t{1} << 22;
    const std::vector<float> a = RandVec(n, 5);
    const float* pa = a.data();
    BenchRow row;
    row.op = "reduce_sum";
    row.size = StrFormat("%lld", static_cast<long long>(n));
    volatile double sink = 0.0;
    row.serial_ms = TimeMs(reps, [&] {
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i) acc += pa[i];
      sink = acc;
    });
    for (int64_t t : thread_counts) {
      kernels::SetNumThreads(t);
      row.per_thread_ms.emplace_back(t, TimeMs(reps, [&] {
        sink = kernels::ReduceSum(
            n, [pa](int64_t i) { return static_cast<double>(pa[i]); });
      }));
    }
    (void)sink;
    rows.push_back(row);
  }

  // --- Scheduler dispatch overhead: empty region, old vs new ----------------
  // Per-region fork/join latency with a no-op body at a 4-participant team —
  // pure scheduling cost, the term that dominated the d=24 shapes. The old
  // column replays the seed's protocol verbatim (one ThreadPool::Submit per
  // helper — queue mutex + condvar each — and a condvar join); the new
  // column is kernels::ParallelChunks over the persistent RegionPool team
  // (one epoch publish, shared chunk counter, arrival-counter join). Both
  // values are nanoseconds per region; the speedup column is the headline
  // old/new improvement.
  double dispatch_old_vs_new = 0.0;
  {
    const int64_t team = 4;
    constexpr int64_t kRegions = 2000;
    ThreadPool old_pool(static_cast<size_t>(team - 1));
    auto old_region = [&old_pool, team] {
      struct CallState {
        std::atomic<int64_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        int64_t pending = 0;
      };
      CallState state;
      state.pending = team - 1;
      auto drain = [&state, team] {
        for (;;) {
          const int64_t c = state.next.fetch_add(1, std::memory_order_relaxed);
          if (c >= team) break;
        }
      };
      for (int64_t h = 0; h < team - 1; ++h) {
        old_pool.Submit([&state, &drain] {
          drain();
          std::lock_guard<std::mutex> lock(state.mutex);
          if (--state.pending == 0) state.done.notify_all();
        });
      }
      drain();
      std::unique_lock<std::mutex> lock(state.mutex);
      state.done.wait(lock, [&state] { return state.pending == 0; });
    };
    kernels::SetNumThreads(team);
    auto new_region = [team] {
      kernels::ParallelChunks(team, 1, [](int64_t, int64_t) {});
    };
    old_region();  // warm-up both teams
    new_region();
    const double old_ns =
        TimeMs(reps, [&] { for (int64_t r = 0; r < kRegions; ++r) old_region(); }) *
        1.0e6 / kRegions;
    const double new_ns =
        TimeMs(reps, [&] { for (int64_t r = 0; r < kRegions; ++r) new_region(); }) *
        1.0e6 / kRegions;
    if (new_ns > 0.0) dispatch_old_vs_new = old_ns / new_ns;
    BenchRow row;
    row.op = "dispatch_overhead_ns";
    row.size = StrFormat("team %lld, empty region",
                         static_cast<long long>(team));
    row.serial_ms = old_ns;  // ns per region, old scheduler
    row.per_thread_ms.emplace_back(team, new_ns);  // ns per region, new
    rows.push_back(row);
  }
  kernels::SetNumThreads(0);
  kernels::SetVecMath(ambient_vec_math);

  // --- Snapshot memory footprint --------------------------------------------
  // Resident bytes of the reduced-precision published-weight blocks over the
  // paper model's 2-D (GEMM-consumed) weights, vs their fp32 storage, plus
  // the CompactFloats rehearsal-record encoding of a logits/feature vector.
  double snapshot_bf16_ratio = 0.0, snapshot_int8_ratio = 0.0;
  {
    Rng rng(17);
    models::ModelConfig config = models::ModelConfig::Small(16, 3);
    models::CompactTransformer model(config, &rng);
    model.AddTask(4);
    size_t fp32_bytes = 0, bf16_bytes = 0, int8_bytes = 0;
    for (const Tensor& p : model.Parameters()) {
      if (p.shape().ndim() != 2) continue;
      fp32_bytes += static_cast<size_t>(p.NumElements()) * sizeof(float);
      bf16_bytes +=
          QuantizeWeight(p, kernels::GemmPrecision::kBf16).ByteSize();
      int8_bytes +=
          QuantizeWeight(p, kernels::GemmPrecision::kInt8).ByteSize();
    }
    if (fp32_bytes > 0) {
      snapshot_bf16_ratio =
          static_cast<double>(bf16_bytes) / static_cast<double>(fp32_bytes);
      snapshot_int8_ratio =
          static_cast<double>(int8_bytes) / static_cast<double>(fp32_bytes);
    }
    const std::vector<float> feat = RandVec(4096, 19);
    kernels::SetGemmPrecision(kernels::GemmPrecision::kBf16);
    const size_t cf_bf16 = cl::CompactFloats::Encode(feat).ByteSize();
    kernels::SetGemmPrecision(kernels::GemmPrecision::kInt8);
    const size_t cf_int8 = cl::CompactFloats::Encode(feat).ByteSize();
    kernels::SetGemmPrecision(kernels::GemmPrecision::kFp32);
    std::printf(
        "snapshot footprint: model 2-D weights %zu B fp32 -> %zu B bf16 "
        "(%.2fx), %zu B int8 (%.2fx); CompactFloats 4096-float record "
        "%zu B fp32 -> %zu B bf16, %zu B int8\n",
        fp32_bytes, bf16_bytes, snapshot_bf16_ratio, int8_bytes,
        snapshot_int8_ratio, feat.size() * sizeof(float), cf_bf16, cf_int8);
  }

  std::vector<std::string> header = {"op", "size", "serial ms"};
  for (int64_t t : thread_counts) {
    header.push_back(StrFormat("%lldT ms", static_cast<long long>(t)));
  }
  header.push_back("speedup 4T");
  TablePrinter table(header);
  for (const BenchRow& r : rows) {
    std::vector<std::string> cells = {r.op, r.size,
                                      StrFormat("%.2f", r.serial_ms)};
    for (int64_t t : thread_counts) {
      cells.push_back(StrFormat("%.2f", r.ThreadMs(t)));
    }
    const double t4 = r.ThreadMs(4);
    cells.push_back(StrFormat("%.2fx", t4 > 0.0 ? r.serial_ms / t4 : 0.0));
    table.AddRow(cells);
  }
  table.Print();

  // Headline number for the packed-B SIMD path: single-thread speedup over
  // the PR-1 blocked scalar tile on the same shape.
  double packed_vs_blocked = 0.0;
  {
    double blocked = 0.0, packed = 0.0;
    for (const BenchRow& r : rows) {
      if (r.op == "matmul_blocked") blocked = r.ThreadMs(1);
      if (r.op == "matmul_packed") packed = r.ThreadMs(1);
    }
    if (blocked > 0.0 && packed > 0.0) packed_vs_blocked = blocked / packed;
    std::printf("packed vs blocked GEMM (1 thread): %.2fx\n",
                packed_vs_blocked);
  }

  // Headline number for the fused batched eval path: batched-attention
  // throughput vs the per-sample loop, both at 8 threads.
  double batched_attention_8t = 0.0;
  {
    double loop8 = 0.0, fused8 = 0.0;
    for (const BenchRow& r : rows) {
      if (r.op == "attn_eval_persample") loop8 = r.ThreadMs(8);
      if (r.op == "attn_eval_batched") fused8 = r.ThreadMs(8);
    }
    if (loop8 > 0.0 && fused8 > 0.0) batched_attention_8t = loop8 / fused8;
    std::printf("batched vs per-sample attention eval (8 threads): %.2fx\n",
                batched_attention_8t);
  }

  // Headline numbers for the arena + fused training path: step throughput
  // vs the seed's op-by-op heap training step at 1 and 8 threads (same
  // shape, same per-element math).
  double train_step_1t = 0.0, train_step_8t = 0.0;
  {
    double op1 = 0.0, fused1 = 0.0, op8 = 0.0, fused8 = 0.0;
    for (const BenchRow& r : rows) {
      if (r.op == "train_step_op") {
        op1 = r.ThreadMs(1);
        op8 = r.ThreadMs(8);
      }
      if (r.op == "train_step_fused_arena") {
        fused1 = r.ThreadMs(1);
        fused8 = r.ThreadMs(8);
      }
    }
    if (op1 > 0.0 && fused1 > 0.0) train_step_1t = op1 / fused1;
    if (op8 > 0.0 && fused8 > 0.0) train_step_8t = op8 / fused8;
    std::printf(
        "arena + fused training step vs seed op-by-op heap step: %.2fx "
        "(1 thread), %.2fx (8 threads)\n",
        train_step_1t, train_step_8t);
  }

  std::printf(
      "vectorized transcendentals vs libm (1 thread): exp %.2fx, tanh %.2fx; "
      "layernorm vectorized vs legacy rows: %.2fx\n",
      vec_exp_1t, vec_tanh_1t, layernorm_fused_1t);

  std::printf(
      "quantized batched attention eval vs fp32 fused (1 thread): "
      "bf16 %.2fx, int8 %.2fx\n",
      quant_attn_bf16_1t, quant_attn_int8_1t);

  // Headline numbers for the persistent scheduler and the async pipeline:
  // empty-region dispatch latency old/new, and the pipelined step vs its
  // deferred-sync twin at 8 threads.
  double train_step_pipelined_8t = 0.0;
  {
    double sync8 = 0.0, async8 = 0.0;
    for (const BenchRow& r : rows) {
      if (r.op == "train_step_pipeline_sync") sync8 = r.ThreadMs(8);
      if (r.op == "train_step_pipelined") async8 = r.ThreadMs(8);
    }
    if (sync8 > 0.0 && async8 > 0.0) train_step_pipelined_8t = sync8 / async8;
    std::printf(
        "empty-region dispatch old vs new scheduler: %.2fx; pipelined vs "
        "sync train step (8 threads): %.2fx\n",
        dispatch_old_vs_new, train_step_pipelined_8t);
  }

  Headlines headlines;
  headlines.packed_vs_blocked_1t = packed_vs_blocked;
  headlines.batched_attention_8t = batched_attention_8t;
  headlines.train_step_fused_arena_1t = train_step_1t;
  headlines.train_step_fused_arena_8t = train_step_8t;
  headlines.vec_exp_1t = vec_exp_1t;
  headlines.vec_tanh_1t = vec_tanh_1t;
  headlines.layernorm_fused_1t = layernorm_fused_1t;
  headlines.quant_attn_bf16_1t = quant_attn_bf16_1t;
  headlines.quant_attn_int8_1t = quant_attn_int8_1t;
  headlines.snapshot_weights_bf16_vs_fp32 = snapshot_bf16_ratio;
  headlines.snapshot_weights_int8_vs_fp32 = snapshot_int8_ratio;
  headlines.dispatch_overhead_old_vs_new = dispatch_old_vs_new;
  headlines.train_step_pipelined_8t = train_step_pipelined_8t;
  WriteJson(out_path, rows, headlines);
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}
