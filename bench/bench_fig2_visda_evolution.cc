// Figure 2: evolution of CDCL's per-task accuracy on VisDA-2017 as training
// progresses through the task sequence, for both TIL and CIL, with the
// mean +- std band over R[i][j] (i >= j) that the paper shades.
//
// Output: one series per evaluation task - the accuracy trajectory over
// "after task i" checkpoints - plus column mean/std, averaged over seeds.

#include <cstdio>

#include "cl/experiment.h"
#include "core/cdcl_trainer.h"
#include "core/driver.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace cdcl;  // NOLINT: bench brevity

void PrintScenario(const char* name,
                   const std::vector<cl::AccuracyMatrix>& matrices) {
  const int64_t tasks = matrices[0].num_tasks();
  std::printf("\n-- %s: accuracy after each task (%%), rows = eval task --\n",
              name);
  std::vector<std::string> header = {"eval task"};
  for (int64_t i = 0; i < tasks; ++i) {
    header.push_back(StrFormat("after t%lld", static_cast<long long>(i)));
  }
  header.push_back("mean");
  header.push_back("std");
  TablePrinter table(header);
  for (int64_t j = 0; j < tasks; ++j) {
    std::vector<std::string> row = {
        StrFormat("t%lld", static_cast<long long>(j))};
    for (int64_t i = 0; i < tasks; ++i) {
      if (i < j) {
        row.push_back("-");
        continue;
      }
      double mean = 0.0;
      for (const auto& m : matrices) mean += m.Get(i, j);
      row.push_back(StrFormat("%.2f", 100.0 * mean / matrices.size()));
    }
    // Column stats averaged over seeds (the shaded band of Figure 2).
    double mean = 0.0, stddev = 0.0;
    for (const auto& m : matrices) {
      auto stats = m.Column(j);
      mean += stats.mean;
      stddev += stats.stddev;
    }
    row.push_back(StrFormat("%.2f", 100.0 * mean / matrices.size()));
    row.push_back(StrFormat("%.2f", 100.0 * stddev / matrices.size()));
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  core::ExperimentSpec spec;
  spec.family = "visda";
  spec.source_domain = "syn";
  spec.target_domain = "real";
  spec.num_tasks = 4;
  spec.classes_per_task = 3;
  spec.train_per_class = 16;
  spec.test_per_class = 8;

  baselines::TrainerOptions options;
  options.model.channels = 3;
  options.model.embed_dim = 32;
  options.model.num_layers = 2;
  options.epochs = 14;
  options.warmup_epochs = 4;
  options.memory_size = 120;
  core::ApplyEnvOverrides(&spec, &options);
  const int64_t seeds = EnvInt("CDCL_SEEDS", 2);

  std::printf("== Figure 2 - CDCL ACC evolution on VisDA-2017 ==\n");
  std::printf("tasks=%lld seeds=%lld epochs=%lld\n",
              static_cast<long long>(spec.num_tasks),
              static_cast<long long>(seeds),
              static_cast<long long>(options.epochs));

  Stopwatch timer;
  std::vector<cl::AccuracyMatrix> til_runs, cil_runs;
  for (int64_t s = 0; s < seeds; ++s) {
    core::ExperimentSpec seeded = spec;
    seeded.seed = static_cast<uint64_t>(s + 1);
    Result<cl::ContinualResult> result =
        core::RunMethodOnPair("CDCL", seeded, options);
    if (!result.ok()) {
      std::fprintf(stderr, "ERROR %s\n", result.status().ToString().c_str());
      return 1;
    }
    til_runs.push_back(result->til);
    cil_runs.push_back(result->cil);
  }

  PrintScenario("TIL", til_runs);
  PrintScenario("CIL", cil_runs);
  std::printf(
      "\npaper shape check: TIL columns stay roughly flat after their first "
      "point (mild forgetting); CIL columns decay sharply - the stability "
      "gap Figure 2 illustrates.\n");
  std::printf("total wall time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
