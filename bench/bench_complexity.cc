// Eq. 24 complexity microbenchmarks (google-benchmark): the forward cost of
// CDCL decomposes as O(n * Lc) for the conv tokenizer and
// O((d*n^2 + n*d^2) * La) for the cross-attention stack. Sweeping n
// (sequence length) at fixed d and d at fixed n exposes the quadratic terms.

#include <benchmark/benchmark.h>

#include "models/compact_transformer.h"
#include "nn/attention.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace cdcl;  // NOLINT: bench brevity

/// Attention forward for a given sequence length (quadratic-in-n term).
void BM_AttentionSeqLen(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(1);
  nn::TaskConditionedAttention attn(d, n, &rng);
  attn.AddTask();
  Tensor x = Tensor::Randn(Shape{1, n, d}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.SelfAttention(x, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AttentionSeqLen)->RangeMultiplier(2)->Range(8, 128)->Complexity();

/// Attention forward for a given embedding width (quadratic-in-d term).
void BM_AttentionEmbedDim(benchmark::State& state) {
  const int64_t n = 16;
  const int64_t d = state.range(0);
  Rng rng(2);
  nn::TaskConditionedAttention attn(d, n, &rng);
  attn.AddTask();
  Tensor x = Tensor::Randn(Shape{1, n, d}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.SelfAttention(x, 0));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_AttentionEmbedDim)->RangeMultiplier(2)->Range(8, 128)->Complexity();

/// Cross-attention costs the same order as self-attention (eq. 3 vs eq. 2).
void BM_CrossAttention(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(3);
  nn::TaskConditionedAttention attn(d, n, &rng);
  attn.AddTask();
  Tensor xs = Tensor::Randn(Shape{1, n, d}, &rng);
  Tensor xt = Tensor::Randn(Shape{1, n, d}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.CrossAttention(xs, xt, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CrossAttention)->RangeMultiplier(2)->Range(8, 128)->Complexity();

/// Conv tokenizer scales linearly in the pixel count (O(n * Lc)).
void BM_ConvTokenizer(benchmark::State& state) {
  const int64_t hw = state.range(0);
  Rng rng(4);
  nn::ConvTokenizer tok(hw, 3, 32, 2, 3, &rng);
  Tensor x = Tensor::Randn(Shape{1, 3, hw, hw}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Forward(x));
  }
  state.SetComplexityN(hw * hw);
}
BENCHMARK(BM_ConvTokenizer)->RangeMultiplier(2)->Range(8, 64)->Complexity();

/// Full model forward (self path), the unit the training loop repeats.
void BM_ModelForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(5);
  models::ModelConfig config;
  config.image_hw = 16;
  config.channels = 3;
  config.embed_dim = 32;
  config.num_layers = 2;
  models::CompactTransformer model(config, &rng);
  model.AddTask(4);
  Tensor x = Tensor::Randn(Shape{batch, 3, 16, 16}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.CilLogits(model.EncodeSelf(x, 0)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelForward)->Arg(1)->Arg(8)->Arg(32);

/// Forward+backward of one training step (the hot loop of every bench).
void BM_TrainStep(benchmark::State& state) {
  Rng rng(6);
  models::ModelConfig config;
  config.image_hw = 16;
  config.channels = 3;
  config.embed_dim = 32;
  config.num_layers = 2;
  models::CompactTransformer model(config, &rng);
  model.AddTask(4);
  Tensor x = Tensor::Randn(Shape{16, 3, 16, 16}, &rng);
  std::vector<int64_t> labels(16, 1);
  for (auto _ : state) {
    model.ZeroGrad();
    Tensor loss =
        ops::CrossEntropy(model.CilLogits(model.EncodeSelf(x, 0)), labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TrainStep);

}  // namespace

BENCHMARK_MAIN();
