// Table I (VisDA-2017 column): synthetic-renders -> real, 12 classes in 4
// tasks of 3.
//
// Paper reference shape: CDCL TIL ACC 40.80 dominates all continual
// baselines (~8-12); TVT reaches 83.92.

#include "table_harness.h"

int main() {
  cdcl::bench::TableBenchConfig config;
  config.title = "Table I - VisDA-2017 (synthetic substitution)";
  config.family = "visda";
  config.pairs = {{"syn", "real", "VisDA syn->real"}};
  config.paper_til_acc = {40.80};

  config.spec.num_tasks = 4;
  config.spec.classes_per_task = 3;
  config.spec.train_per_class = 16;
  config.spec.test_per_class = 8;

  config.options.model.channels = 3;
  config.options.model.embed_dim = 32;
  config.options.model.num_layers = 2;
  config.options.epochs = 24;
  config.options.warmup_epochs = 10;
  config.options.memory_size = 120;

  config.methods = {"DER",       "DER++",     "HAL",  "MSL", "CDTrans-S",
                    "CDTrans-B", "CDCL", "TVT"};
  return cdcl::bench::RunTableBench(std::move(config));
}
