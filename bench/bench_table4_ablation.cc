// Table IV: ablation of CDCL's loss blocks and attention mechanism on
// MNIST<->USPS, plus the extra design-choice ablations called out in
// DESIGN.md section 5 (pseudo-label distance, memory policy, key freezing,
// linear attention scores).
//
// Paper reference (real data, MN->US TIL): full 91.91; -L_CIL 81.88;
// -L_TIL 59.17; -L_R 68.71; simple attention 62.72. Expected shape: the
// full objective wins; dropping L_TIL hurts most; simple attention erases
// the contribution.

#include <cstdio>
#include <map>
#include <mutex>

#include "cl/experiment.h"
#include "core/cdcl_trainer.h"
#include "core/driver.h"
#include "table_harness.h"
#include "tensor/kernels/parallel.h"
#include "util/env.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace cdcl;  // NOLINT: bench brevity

struct Variant {
  std::string label;
  core::CdclOptions options;
};

}  // namespace

int main() {
  core::ExperimentSpec spec;
  spec.family = "digits";
  spec.num_tasks = 5;
  spec.classes_per_task = 2;
  spec.train_per_class = 24;
  spec.test_per_class = 12;

  baselines::TrainerOptions base;
  base.model.channels = 1;
  base.model.embed_dim = 24;
  base.model.num_layers = 2;
  base.epochs = 16;
  base.warmup_epochs = 5;
  base.memory_size = 100;
  core::ApplyEnvOverrides(&spec, &base);

  std::vector<Variant> variants;
  {
    core::CdclOptions full;
    full.base = base;
    variants.push_back({"full (L_CIL+L_TIL+L_R)", full});

    core::CdclOptions a = full;
    a.use_cil_loss = false;
    variants.push_back({"A: -L_CIL", a});

    core::CdclOptions b = full;
    b.use_til_loss = false;
    variants.push_back({"B: -L_TIL", b});

    core::CdclOptions c = full;
    c.use_rehearsal = false;
    variants.push_back({"C: -L_R", c});

    core::CdclOptions simple = full;
    simple.simple_attention = true;
    variants.push_back({"simple attention", simple});

    // Extra design-choice ablations (not in the paper's table).
    core::CdclOptions euclid = full;
    euclid.base.pseudo_metric = uda::DistanceMetric::kEuclidean;
    variants.push_back({"euclidean pseudo-dist", euclid});

    core::CdclOptions reservoir = full;
    reservoir.base.memory_policy = cl::MemoryPolicy::kReservoir;
    variants.push_back({"reservoir memory", reservoir});

    core::CdclOptions nofreeze = full;
    nofreeze.base.model.freeze_old_keys = false;
    variants.push_back({"trainable old keys", nofreeze});

    core::CdclOptions linear_attn = full;
    linear_attn.base.model.softmax_attention = false;
    variants.push_back({"linear attention (literal eq.2)", linear_attn});
  }

  const char* kPairs[][2] = {{"MN", "US"}, {"US", "MN"}};
  const int64_t threads = bench::ConfigureBenchThreads();

  std::printf("== Table IV - ablation study (synthetic digits, threads=%lld) ==\n",
              static_cast<long long>(threads));

  std::map<std::pair<size_t, int>, cl::ContinualResult> results;
  std::mutex mu;
  std::vector<std::string> errors;
  struct Cell {
    size_t variant;
    int pair;
  };
  std::vector<Cell> cells;
  for (size_t v = 0; v < variants.size(); ++v) {
    for (int p = 0; p < 2; ++p) cells.push_back({v, p});
  }

  Stopwatch timer;
  kernels::ParallelFor(static_cast<int64_t>(cells.size()), 1, [&](int64_t i) {
    const Cell& cell = cells[static_cast<size_t>(i)];
    data::TaskStreamOptions stream_opt;
    stream_opt.family = spec.family;
    stream_opt.source_domain = kPairs[cell.pair][0];
    stream_opt.target_domain = kPairs[cell.pair][1];
    stream_opt.num_tasks = spec.num_tasks;
    stream_opt.classes_per_task = spec.classes_per_task;
    stream_opt.train_per_class = spec.train_per_class;
    stream_opt.test_per_class = spec.test_per_class;
    stream_opt.seed = 1;
    auto stream = data::CrossDomainTaskStream::Make(stream_opt);
    if (!stream.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      errors.push_back(stream.status().ToString());
      return;
    }
    core::CdclOptions opt = variants[cell.variant].options;
    opt.base.model.channels = 1;
    opt.base.seed = 1;
    core::CdclTrainer trainer(opt);
    auto result = cl::RunContinualExperiment(&trainer, *stream);
    std::lock_guard<std::mutex> lock(mu);
    if (!result.ok()) {
      errors.push_back(result.status().ToString());
      return;
    }
    results.emplace(std::make_pair(cell.variant, cell.pair),
                    std::move(*result));
  });
  if (!errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "ERROR %s\n", e.c_str());
    return 1;
  }

  TablePrinter table({"Experiment", "MN->US TIL", "MN->US CIL", "US->MN TIL",
                      "US->MN CIL"});
  for (size_t v = 0; v < variants.size(); ++v) {
    const cl::ContinualResult& mnus = results.at({v, 0});
    const cl::ContinualResult& usmn = results.at({v, 1});
    table.AddRow({variants[v].label, StrFormat("%.2f", 100.0 * mnus.til_acc()),
                  StrFormat("%.2f", 100.0 * mnus.cil_acc()),
                  StrFormat("%.2f", 100.0 * usmn.til_acc()),
                  StrFormat("%.2f", 100.0 * usmn.cil_acc())});
  }
  table.Print();
  std::printf("\npaper (real data, TIL/CIL MN->US): full 91.91/66.73, "
              "A 81.88/63.71, B 59.17/46.33, C 68.71/19.59, simple "
              "62.72/29.82\n");
  std::printf("total wall time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}
