// Table II: Office-Home, all 12 transfer pairs between Ar/Cl/Pr/Re.
//
// The paper runs 65 classes in 13 tasks of 5. The quick default scales to 5
// tasks of 3 so the full 12-pair x 8-method sweep finishes on a laptop; use
// CDCL_TASKS=13 CDCL_CLASSES... for the paper layout (classes per task stay
// at the spec value via the stream options).
//
// Paper reference shape: CDCL TIL ACC 21-31 across pairs, baselines 2-4,
// CDTrans ~1-2, TVT 72-91.

#include "table_harness.h"

int main() {
  cdcl::bench::TableBenchConfig config;
  config.title = "Table II - Office-Home (synthetic substitution)";
  config.family = "officehome";
  const char* domains[] = {"Ar", "Cl", "Pr", "Re"};
  for (const char* s : domains) {
    for (const char* t : domains) {
      if (std::string(s) == t) continue;
      config.pairs.push_back(
          {s, t, std::string(s) + "->" + t});
    }
  }
  config.paper_til_acc = {24.44, 25.18, 26.20, 21.25, 26.64, 23.54,
                          22.89, 24.21, 29.44, 26.25, 26.27, 31.25};

  config.spec.num_tasks = 5;
  config.spec.classes_per_task = 3;
  config.spec.train_per_class = 8;
  config.spec.test_per_class = 5;

  config.options.model.channels = 3;
  config.options.model.embed_dim = 32;
  config.options.model.num_layers = 2;
  config.options.epochs = 20;
  config.options.warmup_epochs = 8;
  config.options.memory_size = 150;

  config.methods = {"DER",       "DER++",     "HAL",  "MSL", "CDTrans-S",
                    "CDTrans-B", "CDCL", "TVT"};
  return cdcl::bench::RunTableBench(std::move(config));
}
