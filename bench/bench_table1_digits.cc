// Table I (MNIST<->USPS block): ACC/FGT of all methods on the synthetic
// digits benchmark, TIL and CIL scenarios.
//
// Paper reference (real data): Ours TIL ACC 91.91 (MN->US), 81.48 (US->MN);
// best continual baseline HAL 80.97 / 73.38; CDTrans ~10; TVT 98.26 / 99.70.
// The expected *shape*: CDCL > DER/DER++/HAL/MSL >> CDTrans on TIL, and
// TVT above everything.

#include "table_harness.h"

int main() {
  cdcl::bench::TableBenchConfig config;
  config.title = "Table I - MNIST<->USPS (synthetic digits substitution)";
  config.family = "digits";
  config.pairs = {{"MN", "US", "MN->US"}, {"US", "MN", "US->MN"}};
  config.paper_til_acc = {91.91, 81.48};

  config.spec.num_tasks = 5;
  config.spec.classes_per_task = 2;
  config.spec.train_per_class = 24;
  config.spec.test_per_class = 12;

  config.options.model.channels = 1;
  config.options.model.embed_dim = 24;
  config.options.model.num_layers = 2;
  config.options.epochs = 16;
  config.options.warmup_epochs = 5;
  config.options.memory_size = 100;

  config.methods = {"DER",       "DER++",     "HAL",  "MSL", "CDTrans-S",
                    "CDTrans-B", "CDCL", "TVT"};
  return cdcl::bench::RunTableBench(std::move(config));
}
