// Serving-path load generator: drives an in-process InferenceServer (bound
// to an ephemeral port) with pipelined client connections and records
// throughput plus p50/p99 request latency per dispatch policy:
//
//   per_request    max_batch=1, deadline=0 — every request is its own eval
//   microbatch     max_batch=32, deadline=200us — adaptive coalescing
//   microbatch_4w  same, 4 batcher workers
//
// The headline ratio (microbatch QPS / per_request QPS) is the acceptance
// number for the micro-batching tentpole: coalescing must beat per-request
// dispatch at the paper shape. Emits BENCH_serve.json.
//
// A second pair of rows measures the serve-while-train subsystem
// (serve/continual.h) at the trainer shape:
//
//   serve_baseline        same traffic against a quiesced trainer snapshot
//   serve_under_training  identical traffic while a CDCL continual run
//                         advances tasks on the training thread, publishing
//                         a fresh snapshot per task; reports overload
//                         rejections (bounded batcher queue) and publishes
//
// Env knobs:
//   CDCL_BENCH_SERVE_REQS     requests per client connection (default 400)
//   CDCL_BENCH_SERVE_CLIENTS  concurrent client connections (default 4)
//   CDCL_BENCH_SERVE_WINDOW   pipelined requests in flight per client (16)
//   CDCL_BENCH_SERVE_TASKS    stream length of the under-training run (3)
//   CDCL_BENCH_SERVE_EPOCHS   trainer epochs per task (3)
//
// Defaults keep clients*window (64 in flight) above max_batch (32) so the
// saturation run measures steady-state coalescing: the queue never drains,
// full batches form back-to-back, and the latency deadline only shapes the
// tail at light load (it never idles a saturated server). The two continual
// rows bound the batcher queue BELOW the in-flight ceiling so admission
// control engages under pressure: clients back off and resubmit kOverloaded
// requests (serve::RetryPolicy, capped exponential backoff with jitter) and
// QPS counts completed (kOk) responses only.
//   CDCL_BENCH_OUT            JSON report path (default BENCH_serve.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cl/experiment.h"
#include "core/cdcl_trainer.h"
#include "data/task_stream.h"
#include "models/compact_transformer.h"
#include "serve/client.h"
#include "serve/continual.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

using namespace cdcl;  // NOLINT: bench brevity
using Clock = std::chrono::steady_clock;

std::vector<float> RandomImage(const models::ModelConfig& config,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<float> pixels(static_cast<size_t>(
      config.channels * config.image_hw * config.image_hw));
  for (float& p : pixels) p = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return pixels;
}

serve::Request MakeRequest(const models::ModelConfig& config,
                           const std::vector<float>& pixels, uint32_t id) {
  serve::Request request;
  request.type = serve::MessageType::kClassifyTil;
  request.request_id = id;
  request.task = 0;
  request.channels = static_cast<uint16_t>(config.channels);
  request.height = static_cast<uint16_t>(config.image_hw);
  request.width = static_cast<uint16_t>(config.image_hw);
  request.pixels = pixels;
  return request;
}

/// One pipelined client connection: keeps `window` requests in flight until
/// `total` responses arrived, recording per-request latency for completed
/// (kOk) responses. A kOverloaded rejection is counted, then the request is
/// re-sent under the retry policy's capped-exponential-backoff-with-jitter
/// schedule (serve::RetryDelayUs) — the backoff sleep is the load shedding
/// the server asked for, and it makes overload-bounded runs converge instead
/// of dropping work. Requests still rejected after max_attempts are given up.
void ClientLoop(uint16_t port, const models::ModelConfig& config,
                const std::vector<float>& pixels, int64_t total,
                int64_t window, const serve::RetryPolicy& retry,
                uint64_t rng_seed, std::vector<double>* latencies_ms,
                uint64_t* overloaded, bool* ok) {
  Rng rng(rng_seed);
  serve::Client client;
  if (!client.ConnectWithRetry(port, retry, &rng)) {
    *ok = false;
    return;
  }
  std::map<uint32_t, Clock::time_point> in_flight;
  std::map<uint32_t, int> attempts;  // resubmissions after kOverloaded
  uint32_t next_id = 1;
  int64_t received = 0;
  *ok = true;
  while (received < total) {
    while (static_cast<int64_t>(in_flight.size()) < window &&
           static_cast<int64_t>(next_id) <= total) {
      const uint32_t id = next_id++;
      in_flight[id] = Clock::now();
      if (!client.Send(MakeRequest(config, pixels, id))) {
        *ok = false;
        return;
      }
    }
    serve::Response response;
    if (!client.Receive(&response)) {
      *ok = false;
      return;
    }
    const auto it = in_flight.find(response.request_id);
    if (it == in_flight.end()) {
      *ok = false;
      return;
    }
    if (response.status == serve::ResponseStatus::kOk) {
      latencies_ms->push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - it->second)
              .count());
    } else if (response.status == serve::ResponseStatus::kOverloaded) {
      ++*overloaded;  // rejected at admission — not a completed request
      const int attempt = ++attempts[response.request_id];
      if (attempt < retry.max_attempts) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            serve::RetryDelayUs(retry, attempt, &rng)));
        if (!client.Send(MakeRequest(config, pixels, response.request_id))) {
          *ok = false;
          return;
        }
        continue;  // still in flight; latency covers the whole retry span
      }
      attempts.erase(response.request_id);  // out of attempts: give up
    } else {
      *ok = false;
      return;
    }
    in_flight.erase(it);
    ++received;
  }
}

/// Backoff tuned for an in-process server: short base so retries don't
/// dominate the window, capped well below the eval latency of a full batch.
serve::RetryPolicy BenchRetryPolicy() {
  serve::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.base_delay_us = 200;
  retry.max_delay_us = 5000;
  return retry;
}

struct RunResult {
  std::string name;
  int64_t workers = 0;
  int64_t max_batch = 0;
  int64_t deadline_us = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t batches = 0;
  double mean_batch = 0.0;
  int64_t max_batch_seen = 0;
  uint64_t rejected = 0;   // kOverloaded admissions (bounded queue)
  uint64_t publishes = 0;  // snapshot generations published during the run
  bool ok = false;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  if (sorted_in_place->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

RunResult RunConfig(const std::string& name,
                    std::shared_ptr<const models::CompactTransformer> model,
                    const models::ModelConfig& config,
                    serve::InferenceServer::Options options, int64_t clients,
                    int64_t reqs_per_client, int64_t window) {
  RunResult result;
  result.name = name;
  result.workers = options.workers;
  result.max_batch = options.max_batch;
  result.deadline_us = options.deadline_us;

  options.port = 0;  // ephemeral
  serve::InferenceServer server(options, std::move(model));
  if (!server.Start()) return result;
  const std::vector<float> pixels = RandomImage(config, /*seed=*/7);
  const serve::RetryPolicy retry = BenchRetryPolicy();

  // Warm up kernel dispatch, thread pool and the quantized-weight cache so
  // the timed window measures steady-state serving.
  {
    Rng warm_rng(11);
    serve::Client warm;
    serve::Response response;
    if (!warm.ConnectWithRetry(server.port(), retry, &warm_rng)) return result;
    for (int i = 0; i < 8; ++i) {
      if (!warm.CallWithRetry(MakeRequest(config, pixels, 1000000u + i),
                              &response, server.port(), retry, &warm_rng)) {
        return result;
      }
    }
  }
  const serve::MicroBatcher::Stats warm_stats = server.batcher_stats();

  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> overloads(clients, 0);
  std::vector<bool> oks(clients, false);
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      bool ok = false;
      ClientLoop(server.port(), config, pixels, reqs_per_client, window,
                 retry, /*rng_seed=*/100 + static_cast<uint64_t>(c),
                 &latencies[c], &overloads[c], &ok);
      oks[c] = ok;
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.Stop();

  result.ok = true;
  for (int64_t c = 0; c < clients; ++c) result.ok = result.ok && oks[c];
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  // QPS counts completed responses only — a rejected request is answered
  // fast, and crediting it would make overload look like throughput.
  result.qps = seconds > 0.0 ? static_cast<double>(all.size()) / seconds : 0.0;
  result.p99_ms = Percentile(&all, 0.99);
  result.p50_ms = Percentile(&all, 0.50);
  const serve::MicroBatcher::Stats stats = server.batcher_stats();
  result.batches = stats.batches - warm_stats.batches;
  const uint64_t reqs = stats.requests - warm_stats.requests;
  result.mean_batch = result.batches > 0
                          ? static_cast<double>(reqs) /
                                static_cast<double>(result.batches)
                          : 0.0;
  result.max_batch_seen = stats.max_batch_seen;
  result.rejected = stats.rejected;
  return result;
}

/// The serve_under_training row: identical pipelined traffic, but a CDCL
/// continual run advances `stream`'s remaining tasks on the ContinualServer's
/// training thread for the whole window, publishing after every task.
RunResult RunUnderTraining(const std::string& name,
                           baselines::TrainerBase* trainer,
                           const data::CrossDomainTaskStream& stream,
                           const models::ModelConfig& config,
                           serve::InferenceServer::Options options,
                           int64_t clients, int64_t reqs_per_client,
                           int64_t window, bool train) {
  RunResult result;
  result.name = name;
  result.workers = options.workers;
  result.max_batch = options.max_batch;
  result.deadline_us = options.deadline_us;

  options.port = 0;  // ephemeral
  serve::ContinualServer::Options continual_options;
  continual_options.server = options;
  continual_options.publish_every = 1;
  serve::ContinualServer continual(continual_options, trainer);
  if (!continual.Start()) return result;
  const std::vector<float> pixels = RandomImage(config, /*seed=*/7);
  const serve::RetryPolicy retry = BenchRetryPolicy();

  {
    Rng warm_rng(11);
    serve::Client warm;
    serve::Response response;
    if (!warm.ConnectWithRetry(continual.port(), retry, &warm_rng)) {
      return result;
    }
    for (int i = 0; i < 8; ++i) {
      if (!warm.CallWithRetry(MakeRequest(config, pixels, 1000000u + i),
                              &response, continual.port(), retry,
                              &warm_rng)) {
        return result;
      }
    }
  }
  const serve::MicroBatcher::Stats warm_stats =
      continual.server().batcher_stats();

  cl::ExperimentOptions experiment;
  experiment.first_task = trainer->tasks_seen();
  experiment.evaluate = false;  // pure training load vs the serving path
  if (train) continual.BeginTraining(stream, experiment);

  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> overloads(clients, 0);
  std::vector<bool> oks(clients, false);
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      bool ok = false;
      ClientLoop(continual.port(), config, pixels, reqs_per_client, window,
                 retry, /*rng_seed=*/100 + static_cast<uint64_t>(c),
                 &latencies[c], &overloads[c], &ok);
      oks[c] = ok;
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  const bool trainer_active_throughout = !train || !continual.training_done();
  if (train) {
    Result<cl::ContinualResult> trained = continual.WaitForTraining();
    if (!trained.ok()) return result;
  }
  const serve::MicroBatcher::Stats stats = continual.server().batcher_stats();
  result.publishes = continual.publishes();
  continual.Stop();

  result.ok = true;
  for (int64_t c = 0; c < clients; ++c) result.ok = result.ok && oks[c];
  if (train && !trainer_active_throughout) {
    std::fprintf(stderr,
                 "bench_serve: NOTE — training finished before the traffic "
                 "window closed; raise CDCL_BENCH_SERVE_EPOCHS or lower "
                 "CDCL_BENCH_SERVE_REQS for a fully-contended window\n");
  }
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  result.qps = seconds > 0.0 ? static_cast<double>(all.size()) / seconds : 0.0;
  result.p99_ms = Percentile(&all, 0.99);
  result.p50_ms = Percentile(&all, 0.50);
  result.batches = stats.batches - warm_stats.batches;
  const uint64_t reqs = stats.requests - warm_stats.requests;
  result.mean_batch = result.batches > 0
                          ? static_cast<double>(reqs) /
                                static_cast<double>(result.batches)
                          : 0.0;
  result.max_batch_seen = stats.max_batch_seen;
  result.rejected = stats.rejected;
  return result;
}

void WriteJson(const std::string& path, const std::vector<RunResult>& rows,
               double microbatch_vs_per_request,
               double under_training_vs_baseline) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"headlines\": {\n");
  std::fprintf(f, "    \"microbatch_vs_per_request_qps\": %.3f,\n",
               microbatch_vs_per_request);
  std::fprintf(f, "    \"under_training_vs_baseline_qps\": %.3f\n  },\n",
               under_training_vs_baseline);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workers\": %lld, \"max_batch\": "
                 "%lld, \"deadline_us\": %lld, \"qps\": %.1f, \"p50_ms\": "
                 "%.3f, \"p99_ms\": %.3f, \"batches\": %llu, \"mean_batch\": "
                 "%.2f, \"max_batch_seen\": %lld, \"rejected\": %llu, "
                 "\"publishes\": %llu, \"ok\": %s}%s\n",
                 r.name.c_str(), static_cast<long long>(r.workers),
                 static_cast<long long>(r.max_batch),
                 static_cast<long long>(r.deadline_us), r.qps, r.p50_ms,
                 r.p99_ms, static_cast<unsigned long long>(r.batches),
                 r.mean_batch, static_cast<long long>(r.max_batch_seen),
                 static_cast<unsigned long long>(r.rejected),
                 static_cast<unsigned long long>(r.publishes),
                 r.ok ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const int64_t reqs = EnvInt("CDCL_BENCH_SERVE_REQS", 400);
  const int64_t clients = EnvInt("CDCL_BENCH_SERVE_CLIENTS", 4);
  const int64_t window = EnvInt("CDCL_BENCH_SERVE_WINDOW", 16);
  const std::string out = EnvString("CDCL_BENCH_OUT", "BENCH_serve.json");

  models::ModelConfig config = models::ModelConfig::Small(16, 3);
  config.embed_dim = EnvInt("CDCL_EMBED_DIM", config.embed_dim);
  config.num_layers = EnvInt("CDCL_LAYERS", config.num_layers);
  Rng rng(42);
  auto model = std::make_shared<models::CompactTransformer>(config, &rng);
  model->AddTask(4);
  model->AddTask(4);
  model->SetTraining(false);

  std::printf("bench_serve: %lld clients x %lld reqs, window %lld (d=%lld, "
              "layers=%lld)\n",
              static_cast<long long>(clients), static_cast<long long>(reqs),
              static_cast<long long>(window),
              static_cast<long long>(config.embed_dim),
              static_cast<long long>(config.num_layers));

  serve::InferenceServer::Options per_request;
  per_request.workers = 1;
  per_request.max_batch = 1;
  per_request.deadline_us = 0;

  serve::InferenceServer::Options microbatch;
  microbatch.workers = 1;
  microbatch.max_batch = 32;
  microbatch.deadline_us = 200;

  serve::InferenceServer::Options microbatch_4w = microbatch;
  microbatch_4w.workers = 4;

  std::vector<RunResult> rows;
  rows.push_back(RunConfig("per_request", model, config, per_request, clients,
                           reqs, window));
  rows.push_back(RunConfig("microbatch", model, config, microbatch, clients,
                           reqs, window));
  rows.push_back(RunConfig("microbatch_4w", model, config, microbatch_4w,
                           clients, reqs, window));

  // --- Serve-while-train rows (trainer shape: digits MN->US, 1 channel) ----
  data::TaskStreamOptions stream_opt;
  stream_opt.family = "digits";
  stream_opt.source_domain = "MN";
  stream_opt.target_domain = "US";
  stream_opt.num_tasks = EnvInt("CDCL_BENCH_SERVE_TASKS", 3);
  stream_opt.classes_per_task = 2;
  stream_opt.train_per_class = 12;
  stream_opt.test_per_class = 6;
  stream_opt.seed = 1;
  auto stream = data::CrossDomainTaskStream::Make(stream_opt);

  core::CdclOptions trainer_opt;
  trainer_opt.base.model.image_hw = 16;
  trainer_opt.base.model.channels = 1;
  trainer_opt.base.model.embed_dim = 16;
  trainer_opt.base.model.num_layers = 1;
  trainer_opt.base.epochs = EnvInt("CDCL_BENCH_SERVE_EPOCHS", 3);
  trainer_opt.base.warmup_epochs = 1;
  trainer_opt.base.batch_size = 8;
  trainer_opt.base.memory_size = 40;
  trainer_opt.base.seed = 3;

  if (stream.ok()) {
    core::CdclTrainer trainer(trainer_opt);
    // Task 0 trains up front: both rows serve a snapshot that already has a
    // task head, and the training row advances the remaining tasks live.
    if (trainer.ObserveTask(stream->task(0)).ok()) {
      serve::InferenceServer::Options continual_serve = microbatch;
      // Bound the queue below the in-flight ceiling so admission control
      // engages when the trainer steals cycles from the batcher workers.
      continual_serve.queue_max = std::max<int64_t>(clients * window * 3 / 4, 8);
      rows.push_back(RunUnderTraining(
          "serve_baseline", &trainer, *stream, trainer_opt.base.model,
          continual_serve, clients, reqs, window, /*train=*/false));
      rows.push_back(RunUnderTraining(
          "serve_under_training", &trainer, *stream, trainer_opt.base.model,
          continual_serve, clients, reqs, window, /*train=*/true));
    }
  }

  std::printf("%-20s %8s %10s %10s %10s %10s %9s %9s %6s\n", "config",
              "workers", "qps", "p50_ms", "p99_ms", "mean_bat", "rejected",
              "publishes", "ok");
  for (const RunResult& r : rows) {
    std::printf("%-20s %8lld %10.1f %10.3f %10.3f %10.2f %9llu %9llu %6s\n",
                r.name.c_str(), static_cast<long long>(r.workers), r.qps,
                r.p50_ms, r.p99_ms, r.mean_batch,
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.publishes),
                r.ok ? "yes" : "NO");
  }
  const double ratio =
      rows[0].qps > 0.0 ? rows[1].qps / rows[0].qps : 0.0;
  std::printf("headline: microbatch vs per_request QPS x%.2f\n", ratio);
  double under_training_ratio = 0.0;
  if (rows.size() >= 5 && rows[3].qps > 0.0) {
    under_training_ratio = rows[4].qps / rows[3].qps;
    std::printf("headline: serving retains x%.2f QPS under live training "
                "(%llu overload rejections)\n",
                under_training_ratio,
                static_cast<unsigned long long>(rows[4].rejected));
  }
  WriteJson(out, rows, ratio, under_training_ratio);
  return 0;
}
