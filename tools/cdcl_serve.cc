// cdcl_serve: standalone epoll inference server over a CompactTransformer.
//
// Builds a deterministic paper-shape model (random init — the serving layer
// is agnostic to how the snapshot was trained; a real deployment publishes a
// trained checkpoint via InferenceServer::Publish), sets it to eval mode,
// and serves classify/encode requests on the length-prefixed protocol until
// SIGINT/SIGTERM. See docs/serve.md for the protocol and knob table.
//
// Knobs: CDCL_SERVE_PORT, CDCL_SERVE_WORKERS, CDCL_SERVE_DEADLINE_US,
// CDCL_SERVE_QUEUE_MAX (backpressure bound), CDCL_SERVE_IDLE_TIMEOUT_MS
// (idle-connection reaping, 0 = off), CDCL_FAULT (deterministic fault
// injection, docs/robustness.md), CDCL_EVAL_BATCH (micro-batch ceiling),
// CDCL_GEMM_PRECISION (weight tier), CDCL_TASKS / CDCL_EMBED_DIM /
// CDCL_LAYERS (model shape).

#include <csignal>
#include <memory>

#include "models/compact_transformer.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"

int main() {
  using namespace cdcl;  // NOLINT: tool brevity

  fault::ArmFromEnv();

  models::ModelConfig config = models::ModelConfig::Small(16, 3);
  config.embed_dim = EnvInt("CDCL_EMBED_DIM", config.embed_dim);
  config.num_layers = EnvInt("CDCL_LAYERS", config.num_layers);
  const int64_t tasks = EnvInt("CDCL_TASKS", 2);
  const int64_t classes_per_task = 2;

  Rng rng(42);
  auto model = std::make_shared<models::CompactTransformer>(config, &rng);
  for (int64_t t = 0; t < tasks; ++t) model->AddTask(classes_per_task);
  model->SetTraining(false);
  CDCL_LOG(Info) << "cdcl_serve: model d=" << config.embed_dim << " layers="
                 << config.num_layers << " tasks=" << tasks << " ("
                 << model->NumParameters() << " params)";

  // Block SIGINT/SIGTERM before any thread spawns so the signal is only ever
  // delivered to the sigwait below, never to a worker mid-kernel.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  serve::InferenceServer server(serve::InferenceServer::Options::FromEnv(),
                                model);
  if (!server.Start()) return 1;

  int sig = 0;
  sigwait(&signals, &sig);
  CDCL_LOG(Info) << "cdcl_serve: signal " << sig << ", shutting down";
  server.Stop();
  const auto stats = server.batcher_stats();
  CDCL_LOG(Info) << "cdcl_serve: served " << stats.requests << " requests in "
                 << stats.batches << " batches (max batch "
                 << stats.max_batch_seen << ")";
  return 0;
}
