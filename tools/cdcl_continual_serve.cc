// cdcl_continual_serve: serve-while-train demo driver.
//
// Runs the CDCL continual experiment (synthetic digits MN->US stream) on a
// dedicated training thread while the epoll inference server answers traffic
// the whole time. After each task the trainer's model is deep-copied
// (CompactTransformer::CloneSnapshot) and atomically published; responses
// carry the snapshot version, so clients can watch the model generations
// advance live. Serves until SIGINT/SIGTERM (training finishes on its own;
// the final snapshot keeps serving).
//
// Knobs: CDCL_SERVE_PORT, CDCL_SERVE_WORKERS, CDCL_SERVE_DEADLINE_US,
// CDCL_SERVE_QUEUE_MAX (backpressure bound), CDCL_SERVE_PUBLISH_EVERY
// (publish cadence in tasks), CDCL_EVAL_BATCH (micro-batch ceiling),
// CDCL_TASKS / CDCL_EPOCHS (stream length / schedule).

#include <csignal>

#include "core/cdcl_trainer.h"
#include "data/task_stream.h"
#include "serve/continual.h"
#include "util/env.h"
#include "util/logging.h"

int main() {
  using namespace cdcl;  // NOLINT: tool brevity

  data::TaskStreamOptions stream_opt;
  stream_opt.family = "digits";
  stream_opt.source_domain = "MN";
  stream_opt.target_domain = "US";
  stream_opt.num_tasks = EnvInt("CDCL_TASKS", 3);
  stream_opt.classes_per_task = 2;
  stream_opt.train_per_class = 12;
  stream_opt.test_per_class = 6;
  stream_opt.seed = 1;
  auto stream = data::CrossDomainTaskStream::Make(stream_opt);
  if (!stream.ok()) {
    CDCL_LOG(Error) << "stream: " << stream.status().ToString();
    return 1;
  }

  core::CdclOptions trainer_opt;
  trainer_opt.base.model.image_hw = 16;
  trainer_opt.base.model.channels = 1;
  trainer_opt.base.model.embed_dim = 16;
  trainer_opt.base.model.num_layers = 1;
  trainer_opt.base.epochs = EnvInt("CDCL_EPOCHS", 6);
  trainer_opt.base.warmup_epochs = 2;
  trainer_opt.base.batch_size = 8;
  trainer_opt.base.memory_size = 40;
  trainer_opt.base.seed = 3;
  core::CdclTrainer trainer(trainer_opt);

  // Block SIGINT/SIGTERM before any thread spawns so the signal only ever
  // reaches the sigwait below, never a worker or the trainer mid-kernel.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  serve::ContinualServer continual(serve::ContinualServer::Options::FromEnv(),
                                   &trainer);
  continual.SetPublishObserver([](uint32_t version, const auto& snapshot) {
    CDCL_LOG(Info) << "cdcl_continual_serve: published v" << version << " ("
                   << snapshot->num_tasks() << " tasks)";
  });
  if (!continual.Start()) return 1;
  CDCL_LOG(Info) << "cdcl_continual_serve: serving on port "
                 << continual.port() << ", training "
                 << stream->num_tasks() << " tasks in the background";
  continual.BeginTraining(*stream);

  int sig = 0;
  sigwait(&signals, &sig);
  CDCL_LOG(Info) << "cdcl_continual_serve: signal " << sig
                 << ", shutting down";
  if (continual.training_done()) {
    Result<cl::ContinualResult> result = continual.WaitForTraining();
    if (result.ok()) {
      CDCL_LOG(Info) << "cdcl_continual_serve: TIL acc "
                     << result->til_acc() << " CIL acc " << result->cil_acc();
    }
  }
  const auto stats = continual.server().batcher_stats();
  continual.Stop();
  CDCL_LOG(Info) << "cdcl_continual_serve: served " << stats.requests
                 << " requests in " << stats.batches << " batches, rejected "
                 << stats.rejected << ", " << continual.publishes()
                 << " publishes (latest v"
                 << continual.server().published_version() << ")";
  return 0;
}
