// cdcl_continual_serve: serve-while-train demo driver.
//
// Runs the CDCL continual experiment (synthetic digits MN->US stream) on a
// dedicated training thread while the epoll inference server answers traffic
// the whole time. After each task the trainer's model is deep-copied
// (CompactTransformer::CloneSnapshot) and atomically published; responses
// carry the snapshot version, so clients can watch the model generations
// advance live. Serves until SIGINT/SIGTERM (training finishes on its own;
// the final snapshot keeps serving).
//
// With CDCL_CKPT_DIR set, the trainer checkpoints crash-safely after every
// task, and on startup the driver restores the newest good generation and
// resumes mid-stream — kill -9 at any point loses at most the in-progress
// task. SIGINT/SIGTERM is the graceful path: the training loop stops at the
// next task boundary (writing a final checkpoint), the batcher drains, and
// the process exits 0.
//
// Knobs: CDCL_SERVE_PORT, CDCL_SERVE_WORKERS, CDCL_SERVE_DEADLINE_US,
// CDCL_SERVE_QUEUE_MAX (backpressure bound), CDCL_SERVE_IDLE_TIMEOUT_MS
// (idle-connection reaping), CDCL_SERVE_PUBLISH_EVERY (publish cadence in
// tasks), CDCL_CKPT_DIR / CDCL_CKPT_RETAIN (checkpointing), CDCL_FAULT
// (deterministic fault injection, docs/robustness.md), CDCL_EVAL_BATCH
// (micro-batch ceiling), CDCL_TASKS / CDCL_EPOCHS (stream length / schedule).

#include <csignal>

#include "ckpt/checkpoint.h"
#include "core/cdcl_trainer.h"
#include "data/task_stream.h"
#include "serve/continual.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/logging.h"

int main() {
  using namespace cdcl;  // NOLINT: tool brevity

  fault::ArmFromEnv();

  data::TaskStreamOptions stream_opt;
  stream_opt.family = "digits";
  stream_opt.source_domain = "MN";
  stream_opt.target_domain = "US";
  stream_opt.num_tasks = EnvInt("CDCL_TASKS", 3);
  stream_opt.classes_per_task = 2;
  stream_opt.train_per_class = 12;
  stream_opt.test_per_class = 6;
  stream_opt.seed = 1;
  auto stream = data::CrossDomainTaskStream::Make(stream_opt);
  if (!stream.ok()) {
    CDCL_LOG(Error) << "stream: " << stream.status().ToString();
    return 1;
  }

  core::CdclOptions trainer_opt;
  trainer_opt.base.model.image_hw = 16;
  trainer_opt.base.model.channels = 1;
  trainer_opt.base.model.embed_dim = 16;
  trainer_opt.base.model.num_layers = 1;
  trainer_opt.base.epochs = EnvInt("CDCL_EPOCHS", 6);
  trainer_opt.base.warmup_epochs = 2;
  trainer_opt.base.batch_size = 8;
  trainer_opt.base.memory_size = 40;
  trainer_opt.base.seed = 3;
  core::CdclTrainer trainer(trainer_opt);

  // Resume from the newest good checkpoint generation when a checkpoint
  // directory is configured. NotFound (no checkpoint yet) is the normal
  // first-boot case; anything else falls back to a fresh run with a warning.
  int64_t first_task = 0;
  const std::string ckpt_dir = EnvString("CDCL_CKPT_DIR", "");
  if (!ckpt_dir.empty()) {
    const Result<ckpt::CheckpointInfo> restored =
        ckpt::RestoreTrainer(ckpt_dir, &trainer);
    if (restored.ok()) {
      first_task = restored->next_task;
      CDCL_LOG(Info) << "cdcl_continual_serve: restored generation "
                     << restored->generation << " from " << restored->path
                     << ", resuming at task " << first_task;
    } else if (restored.status().code() == StatusCode::kNotFound) {
      CDCL_LOG(Info) << "cdcl_continual_serve: no checkpoint in " << ckpt_dir
                     << ", starting fresh";
    } else {
      // A failed apply can leave the trainer partially mutated; refuse to
      // train from an undefined state.
      CDCL_LOG(Error) << "cdcl_continual_serve: restore failed: "
                      << restored.status().ToString();
      return 1;
    }
  }

  // Block SIGINT/SIGTERM before any thread spawns so the signal only ever
  // reaches the sigwait below, never a worker or the trainer mid-kernel.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  serve::ContinualServer continual(serve::ContinualServer::Options::FromEnv(),
                                   &trainer);
  continual.SetPublishObserver([](uint32_t version, const auto& snapshot) {
    CDCL_LOG(Info) << "cdcl_continual_serve: published v" << version << " ("
                   << snapshot->num_tasks() << " tasks)";
  });
  if (!continual.Start()) return 1;
  CDCL_LOG(Info) << "cdcl_continual_serve: serving on port "
                 << continual.port() << ", training tasks " << first_task
                 << ".." << stream->num_tasks() - 1 << " in the background";
  cl::ExperimentOptions experiment;
  experiment.first_task = first_task;
  continual.BeginTraining(*stream, experiment);

  int sig = 0;
  sigwait(&signals, &sig);
  CDCL_LOG(Info) << "cdcl_continual_serve: signal " << sig
                 << ", shutting down";
  // Graceful path: the training loop exits at the next task boundary (the
  // after-task hook has then already committed a checkpoint for everything
  // observed), the batcher drains, and we exit 0.
  continual.RequestStop();
  Result<cl::ContinualResult> result = continual.WaitForTraining();
  if (result.ok()) {
    if (result->stopped_early) {
      CDCL_LOG(Info) << "cdcl_continual_serve: stopped early after task "
                     << result->last_task_observed
                     << " (resume with CDCL_CKPT_DIR to continue)";
    } else if (result->last_task_observed >= first_task) {
      CDCL_LOG(Info) << "cdcl_continual_serve: TIL acc "
                     << result->til_acc() << " CIL acc " << result->cil_acc();
    } else {
      // Restored a checkpoint of an already-finished stream: nothing was
      // trained or evaluated this run, so the accuracy matrices are empty —
      // the process just served the restored final model.
      CDCL_LOG(Info) << "cdcl_continual_serve: stream already complete at "
                        "restore; served the final model";
    }
  }
  const auto stats = continual.server().batcher_stats();
  continual.Stop();
  CDCL_LOG(Info) << "cdcl_continual_serve: served " << stats.requests
                 << " requests in " << stats.batches << " batches, rejected "
                 << stats.rejected << ", " << continual.publishes()
                 << " publishes, " << continual.checkpoints()
                 << " checkpoints (latest v"
                 << continual.server().published_version() << ")";
  return 0;
}
